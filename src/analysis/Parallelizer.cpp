//===- analysis/Parallelizer.cpp - Loop parallelization client ------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "analysis/Parallelizer.h"

#include <algorithm>
#include <map>

using namespace edda;

bool edda::carriedAt(const DirVector &V, unsigned Level) {
  if (Level >= V.size())
    return false; // the loop is not part of this pair's common nest
  for (unsigned K = 0; K < Level; ++K)
    if (V[K] == Dir::Less || V[K] == Dir::Greater)
      return false; // definitely carried at an outer level
  // '*' components before Level include '=', so carried-ness here is
  // still possible; stay conservative.
  return V[Level] != Dir::Equal;
}

namespace {

void collectLoops(const std::vector<StmtPtr> &Body,
                  std::vector<LoopStmt *> &Out) {
  for (const StmtPtr &S : Body) {
    if (S->kind() != StmtKind::Loop)
      continue;
    auto &L = asLoop(*S);
    Out.push_back(&L);
    collectLoops(L.body(), Out);
  }
}

void collectAssignedScalars(const std::vector<StmtPtr> &Body,
                            std::vector<unsigned> &Out) {
  for (const StmtPtr &S : Body) {
    if (S->kind() == StmtKind::Assign) {
      const AssignStmt &A = asAssign(*S);
      if (!A.isArrayLhs() &&
          std::find(Out.begin(), Out.end(), A.lhsScalar()) == Out.end())
        Out.push_back(A.lhsScalar());
      continue;
    }
    collectAssignedScalars(asLoop(*S).body(), Out);
  }
}

/// True when \p S (or anything below it) reads variable \p Var in an
/// expression — RHS, subscripts or nested bounds.
bool readsVar(const Stmt &S, unsigned Var) {
  if (S.kind() == StmtKind::Assign) {
    const AssignStmt &A = asAssign(S);
    if (A.isArrayLhs())
      for (const ExprPtr &Sub : A.lhsSubscripts())
        if (Sub->references(Var))
          return true;
    return A.rhs()->references(Var);
  }
  const LoopStmt &L = asLoop(S);
  if (L.lo()->references(Var) || L.hi()->references(Var))
    return true;
  for (const StmtPtr &Child : L.body())
    if (readsVar(*Child, Var))
      return true;
  return false;
}

/// Counts scalar assignments to \p Var below \p S.
unsigned countAssignments(const Stmt &S, unsigned Var) {
  if (S.kind() == StmtKind::Assign) {
    const AssignStmt &A = asAssign(S);
    return !A.isArrayLhs() && A.lhsScalar() == Var ? 1 : 0;
  }
  unsigned Count = 0;
  for (const StmtPtr &Child : asLoop(S).body())
    Count += countAssignments(*Child, Var);
  return Count;
}

/// Matches s = s + e, s = e + s, s = s - e, s = s * e, s = e * s with e
/// free of s. Additive (+/-) and multiplicative updates must not mix,
/// so the operator group is reported through \p Additive.
bool isReductionUpdate(const AssignStmt &A, unsigned Var,
                       bool &Additive) {
  const ExprPtr &Rhs = A.rhs();
  ExprKind K = Rhs->kind();
  if (K != ExprKind::Add && K != ExprKind::Sub && K != ExprKind::Mul)
    return false;
  Additive = K != ExprKind::Mul;
  const ExprPtr &L = Rhs->lhs();
  const ExprPtr &R = Rhs->rhs();
  auto IsVar = [Var](const ExprPtr &E) {
    return E->kind() == ExprKind::Var && E->varId() == Var;
  };
  if (IsVar(L) && !R->references(Var))
    return true;
  if (K != ExprKind::Sub && IsVar(R) && !L->references(Var))
    return true;
  return false;
}

/// Collects every scalar assignment to \p Var below \p S.
void collectUpdates(const Stmt &S, unsigned Var,
                    std::vector<const AssignStmt *> &Out) {
  if (S.kind() == StmtKind::Assign) {
    const AssignStmt &A = asAssign(S);
    if (!A.isArrayLhs() && A.lhsScalar() == Var)
      Out.push_back(&A);
    return;
  }
  for (const StmtPtr &Child : asLoop(S).body())
    collectUpdates(*Child, Var, Out);
}

/// True when \p S reads \p Var outside the given update statements
/// (their RHS use of the scalar is the reduction chain itself).
bool readsVarOutsideUpdates(
    const Stmt &S, unsigned Var,
    const std::vector<const AssignStmt *> &Updates) {
  if (S.kind() == StmtKind::Assign) {
    const AssignStmt &A = asAssign(S);
    if (std::find(Updates.begin(), Updates.end(), &A) != Updates.end())
      return false;
    return readsVar(S, Var);
  }
  const LoopStmt &L = asLoop(S);
  if (L.lo()->references(Var) || L.hi()->references(Var))
    return true;
  for (const StmtPtr &Child : L.body())
    if (readsVarOutsideUpdates(*Child, Var, Updates))
      return true;
  return false;
}

} // namespace

std::vector<std::pair<unsigned, ScalarClass>>
edda::classifyScalars(const Program &Prog, const LoopStmt &Loop) {
  (void)Prog;
  std::vector<unsigned> Assigned;
  collectAssignedScalars(Loop.body(), Assigned);

  std::vector<std::pair<unsigned, ScalarClass>> Out;
  for (unsigned Var : Assigned) {
    // Reduction: every assignment to the scalar (at any depth) is a
    // reduction update of one operator group, and the scalar is read
    // nowhere else in the body. Iteration order then does not matter
    // up to reassociation.
    std::vector<const AssignStmt *> Updates;
    for (const StmtPtr &S : Loop.body())
      collectUpdates(*S, Var, Updates);
    bool AllReductions = !Updates.empty();
    bool GroupKnown = false, GroupAdditive = false;
    for (const AssignStmt *U : Updates) {
      bool Additive;
      if (!isReductionUpdate(*U, Var, Additive)) {
        AllReductions = false;
        break;
      }
      if (GroupKnown && Additive != GroupAdditive) {
        AllReductions = false;
        break;
      }
      GroupKnown = true;
      GroupAdditive = Additive;
    }
    if (AllReductions) {
      bool OtherReads = false;
      for (const StmtPtr &S : Loop.body())
        OtherReads = OtherReads ||
                     readsVarOutsideUpdates(*S, Var, Updates);
      if (!OtherReads) {
        Out.push_back({Var, ScalarClass::Reduction});
        continue;
      }
    }

    // Private: scanning the body in order, the first statement that
    // touches the scalar must be an unconditional top-level write.
    ScalarClass Class = ScalarClass::Carried;
    for (const StmtPtr &S : Loop.body()) {
      bool Reads = readsVar(*S, Var);
      bool Writes = S->kind() == StmtKind::Assign &&
                    !asAssign(*S).isArrayLhs() &&
                    asAssign(*S).lhsScalar() == Var;
      if (Reads)
        break; // read (or read-modify-write) before a definite write
      if (Writes) {
        Class = ScalarClass::Private;
        break;
      }
      // A nested loop that writes (but never reads) the scalar might
      // run zero iterations, so it is not a definite write; keep
      // scanning only if it does not touch the scalar at all.
      if (S->kind() == StmtKind::Loop && countAssignments(*S, Var) > 0)
        break;
    }
    Out.push_back({Var, Class});
  }
  return Out;
}

ParallelizeSummary edda::parallelize(Program &Prog,
                                     DependenceAnalyzer &Analyzer) {
  // Force direction vectors on for this analysis.
  AnalyzerOptions Opts = Analyzer.options();
  Opts.ComputeDirections = true;
  DependenceAnalyzer DirAnalyzer(Opts);
  AnalysisResult Analysis = DirAnalyzer.analyze(Prog);

  std::vector<LoopStmt *> Loops;
  collectLoops(Prog.body(), Loops);

  std::map<const LoopStmt *, bool> Parallel;
  for (LoopStmt *L : Loops)
    Parallel[L] = true;

  for (const DependencePair &Pair : Analysis.Pairs) {
    if (Pair.Answer == DepAnswer::Independent)
      continue;
    if (!Pair.Directions || !Pair.Exact ||
        Pair.Answer == DepAnswer::Unknown) {
      // Conservative: serialize every loop enclosing both references.
      for (const LoopStmt *L : Pair.CommonLoops)
        Parallel[L] = false;
      continue;
    }
    for (const DirVector &V : Pair.Directions->Vectors) {
      for (unsigned Level = 0; Level < Pair.CommonLoops.size(); ++Level)
        if (carriedAt(V, Level))
          Parallel[Pair.CommonLoops[Level]] = false;
    }
  }

  ParallelizeSummary Summary;
  for (LoopStmt *L : Loops) {
    ++Summary.LoopsTotal;
    bool IsParallel = Parallel[L];
    // Array dependences are not the whole story: scalars assigned in
    // the body carry values across iterations unless they are private
    // or reductions.
    bool HasReduction = false;
    if (IsParallel) {
      for (const auto &[Var, Class] : classifyScalars(Prog, *L)) {
        (void)Var;
        if (Class == ScalarClass::Carried)
          IsParallel = false;
        else if (Class == ScalarClass::Reduction)
          HasReduction = true;
      }
    }
    L->setParallel(IsParallel);
    if (IsParallel) {
      ++Summary.LoopsParallel;
      if (HasReduction)
        ++Summary.LoopsWithReductions;
    }
  }
  return Summary;
}
