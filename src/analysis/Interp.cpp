//===- analysis/Interp.cpp - LoopLang reference interpreter ---------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "analysis/Interp.h"

#include "support/IntMath.h"

using namespace edda;

namespace {

class Interpreter {
public:
  Interpreter(const Program &Prog, const InterpOptions &Opts)
      : Prog(Prog), Opts(Opts) {
    Result.VarValues.assign(Prog.numVars(), 0);
    for (const auto &[Var, Value] : Opts.SymbolicValues)
      if (Var < Result.VarValues.size())
        Result.VarValues[Var] = Value;
  }

  InterpResult run() {
    Result.Ok = execBody(Prog.body());
    if (Result.Ok)
      Result.Error.clear();
    return std::move(Result);
  }

private:
  const Program &Prog;
  const InterpOptions &Opts;
  InterpResult Result;
  std::vector<std::pair<const LoopStmt *, int64_t>> LoopStack;
  uint64_t NextSeq = 0;

  bool fail(const std::string &Message) {
    if (Result.Error.empty())
      Result.Error = Message;
    return false;
  }

  bool record(unsigned ArrayId, const AssignStmt *Stmt, int Slot,
              bool IsWrite, std::vector<int64_t> Indices) {
    if (Result.Trace.size() >= Opts.MaxAccesses)
      return fail("access budget exhausted");
    AccessRecord Rec;
    Rec.ArrayId = ArrayId;
    Rec.Stmt = Stmt;
    Rec.Slot = Slot;
    Rec.IsWrite = IsWrite;
    Rec.Indices = std::move(Indices);
    Rec.Iteration = LoopStack;
    Rec.Seq = NextSeq++;
    Result.Trace.push_back(std::move(Rec));
    return true;
  }

  /// Evaluates \p E; array reads are recorded with slots numbered by
  /// \p SlotCounter in the same depth-first order analysis/Refs.h uses.
  std::optional<int64_t> eval(const ExprPtr &E, const AssignStmt *Stmt,
                              int &SlotCounter) {
    switch (E->kind()) {
    case ExprKind::Const:
      return E->constValue();
    case ExprKind::Var:
      return Result.VarValues[E->varId()];
    case ExprKind::Add: {
      std::optional<int64_t> L = eval(E->lhs(), Stmt, SlotCounter);
      std::optional<int64_t> R = eval(E->rhs(), Stmt, SlotCounter);
      if (!L || !R)
        return std::nullopt;
      return checkedAdd(*L, *R);
    }
    case ExprKind::Sub: {
      std::optional<int64_t> L = eval(E->lhs(), Stmt, SlotCounter);
      std::optional<int64_t> R = eval(E->rhs(), Stmt, SlotCounter);
      if (!L || !R)
        return std::nullopt;
      return checkedSub(*L, *R);
    }
    case ExprKind::Mul: {
      std::optional<int64_t> L = eval(E->lhs(), Stmt, SlotCounter);
      std::optional<int64_t> R = eval(E->rhs(), Stmt, SlotCounter);
      if (!L || !R)
        return std::nullopt;
      return checkedMul(*L, *R);
    }
    case ExprKind::Neg: {
      std::optional<int64_t> L = eval(E->lhs(), Stmt, SlotCounter);
      if (!L)
        return std::nullopt;
      return checkedNeg(*L);
    }
    case ExprKind::ArrayRead: {
      int Slot = SlotCounter++;
      std::vector<int64_t> Indices;
      Indices.reserve(E->subscripts().size());
      for (const ExprPtr &Sub : E->subscripts()) {
        std::optional<int64_t> V = eval(Sub, Stmt, SlotCounter);
        if (!V)
          return std::nullopt;
        Indices.push_back(*V);
      }
      if (!record(E->arrayId(), Stmt, Slot, /*IsWrite=*/false, Indices))
        return std::nullopt;
      auto It = Result.Memory.find({E->arrayId(), Indices});
      return It == Result.Memory.end() ? 0 : It->second;
    }
    }
    assert(false && "unknown expression kind");
    return std::nullopt;
  }

  bool execBody(const std::vector<StmtPtr> &Body) {
    for (const StmtPtr &S : Body)
      if (!execStmt(*S))
        return false;
    return true;
  }

  bool execStmt(const Stmt &S) {
    if (S.kind() == StmtKind::Assign) {
      const AssignStmt &A = asAssign(S);
      int SlotCounter = 0;
      if (A.isArrayLhs()) {
        std::vector<int64_t> Indices;
        Indices.reserve(A.lhsSubscripts().size());
        for (const ExprPtr &Sub : A.lhsSubscripts()) {
          std::optional<int64_t> V = eval(Sub, &A, SlotCounter);
          if (!V)
            return fail("arithmetic overflow in subscript");
          Indices.push_back(*V);
        }
        std::optional<int64_t> Value = eval(A.rhs(), &A, SlotCounter);
        if (!Value)
          return fail("arithmetic overflow in expression");
        if (!record(A.lhsArray(), &A, /*Slot=*/-1, /*IsWrite=*/true,
                    Indices))
          return false;
        Result.Memory[{A.lhsArray(), std::move(Indices)}] = *Value;
        return true;
      }
      std::optional<int64_t> Value = eval(A.rhs(), &A, SlotCounter);
      if (!Value)
        return fail("arithmetic overflow in expression");
      Result.VarValues[A.lhsScalar()] = *Value;
      return true;
    }

    const LoopStmt &L = asLoop(S);
    int SlotCounter = 0; // bounds may not contain reads per the grammar,
                         // but stay uniform
    std::optional<int64_t> Lo = eval(L.lo(), nullptr, SlotCounter);
    std::optional<int64_t> Hi = eval(L.hi(), nullptr, SlotCounter);
    if (!Lo || !Hi)
      return fail("arithmetic overflow in loop bound");
    int64_t Step = L.step();
    LoopStack.push_back({&L, 0});
    for (int64_t I = *Lo; Step > 0 ? I <= *Hi : I >= *Hi;) {
      Result.VarValues[L.varId()] = I;
      LoopStack.back().second = I;
      if (!execBody(L.body())) {
        LoopStack.pop_back();
        return false;
      }
      std::optional<int64_t> Next = checkedAdd(I, Step);
      if (!Next) {
        LoopStack.pop_back();
        return fail("loop variable overflow");
      }
      I = *Next;
    }
    LoopStack.pop_back();
    return true;
  }
};

} // namespace

InterpResult edda::interpret(const Program &Prog,
                             const InterpOptions &Opts) {
  return Interpreter(Prog, Opts).run();
}
