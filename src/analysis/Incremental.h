//===- analysis/Incremental.h - Edit-loop re-analysis sessions -*- C++ -*-===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The edit-loop driver on top of DependenceAnalyzer::reanalyze: an
/// IncrementalSession holds one program, its analysis result and its
/// dependence graph, and update() replaces the program with an edited
/// version, re-running only the reference pairs whose content
/// fingerprints changed and splicing the rest of the previous result
/// (and the graph rebuilt from it) in place. The graph after update()
/// is bit-identical to what a from-scratch analysis of the new program
/// would build — the fuzzer's `incr` axis holds this invariant after
/// every step of random edit sequences. Memo entries belonging to pair
/// keys that disappeared are dropped via fingerprint invalidation so a
/// long-lived session's cache tracks its live program.
///
//===----------------------------------------------------------------------===//

#ifndef EDDA_ANALYSIS_INCREMENTAL_H
#define EDDA_ANALYSIS_INCREMENTAL_H

#include "analysis/Analyzer.h"
#include "analysis/DependenceGraph.h"
#include "ir/Program.h"

#include <optional>

namespace edda {

/// One long-lived analyze/edit/re-analyze session.
class IncrementalSession {
public:
  /// \p Opts configures the underlying analyzer; ComputeDirections is
  /// forced on (the graph needs vectors, and reuse splices them).
  explicit IncrementalSession(AnalyzerOptions Opts = {});

  /// True once update() has been called.
  bool hasProgram() const { return Current.has_value(); }
  /// The session's current program, post-prepass. hasProgram() first.
  const Program &program() const { return *Current; }
  const AnalysisResult &result() const { return Result; }
  const DependenceGraph &graph() const { return Graph; }
  DependenceAnalyzer &analyzer() { return Analyzer; }

  /// Replaces the session's program with \p NewProg (typically the
  /// previous program re-parsed after an edit), re-analyzing
  /// incrementally and rebuilding the graph. The first call analyzes
  /// from scratch. Returns what was reused versus re-run; on the first
  /// call every pair counts as invalidated.
  ReanalyzeStats update(Program NewProg);

private:
  DependenceAnalyzer Analyzer;
  std::optional<Program> Current;
  AnalysisResult Result;
  DependenceGraph Graph;
};

} // namespace edda

#endif // EDDA_ANALYSIS_INCREMENTAL_H
