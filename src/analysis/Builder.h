//===- analysis/Builder.h - Reference pair -> problem ----------*- C++ -*-===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds the IR-independent DependenceProblem for a pair of array
/// references: subscript difference equations over the two iteration
/// vectors plus shared symbolic constants, and the enclosing loop bounds
/// (paper section 2). References with non-affine subscripts or
/// references to out-of-scope variables are unanalyzable; loops with
/// non-unit steps that normalization could not remove are relaxed to
/// their bounding interval (sound: independence over the relaxation
/// implies independence, but the problem is flagged inexact).
///
//===----------------------------------------------------------------------===//

#ifndef EDDA_ANALYSIS_BUILDER_H
#define EDDA_ANALYSIS_BUILDER_H

#include "analysis/Refs.h"
#include "deptest/Problem.h"
#include "ir/Program.h"

#include <optional>
#include <vector>

namespace edda {

/// A built problem plus bookkeeping the analyzer needs.
struct BuiltProblem {
  DependenceProblem Problem;
  /// False when some loop range was relaxed (non-unit step survived);
  /// Dependent answers are then conservative rather than exact.
  bool Exact = true;
  /// The common enclosing loops, outermost first (Problem.NumCommon of
  /// them); direction vector components refer to these.
  std::vector<const LoopStmt *> CommonLoops;
  /// Program variable ids of the symbolic columns, in x order.
  std::vector<unsigned> SymbolicVars;
};

/// Builds the dependence problem for references \p A and \p B of
/// \p Program. Returns std::nullopt when the pair is unanalyzable
/// (non-affine subscripts, out-of-scope variables, differing array
/// ranks, or arithmetic overflow).
std::optional<BuiltProblem> buildProblem(const Program &Prog,
                                         const ArrayReference &A,
                                         const ArrayReference &B);

} // namespace edda

#endif // EDDA_ANALYSIS_BUILDER_H
