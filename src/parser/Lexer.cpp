//===- parser/Lexer.cpp - LoopLang lexer ---------------------------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "parser/Lexer.h"

#include "support/IntMath.h"

#include <cctype>

using namespace edda;

const char *edda::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Eof:
    return "end of input";
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::Integer:
    return "integer";
  case TokenKind::KwProgram:
    return "'program'";
  case TokenKind::KwEnd:
    return "'end'";
  case TokenKind::KwFor:
    return "'for'";
  case TokenKind::KwTo:
    return "'to'";
  case TokenKind::KwStep:
    return "'step'";
  case TokenKind::KwDo:
    return "'do'";
  case TokenKind::KwArray:
    return "'array'";
  case TokenKind::KwRead:
    return "'read'";
  case TokenKind::KwParam:
    return "'param'";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBracket:
    return "'['";
  case TokenKind::RBracket:
    return "']'";
  case TokenKind::Equals:
    return "'='";
  case TokenKind::Invalid:
    return "invalid token";
  }
  return "unknown token";
}

namespace {

TokenKind keywordKind(std::string_view Word) {
  if (Word == "program")
    return TokenKind::KwProgram;
  if (Word == "end")
    return TokenKind::KwEnd;
  if (Word == "for")
    return TokenKind::KwFor;
  if (Word == "to")
    return TokenKind::KwTo;
  if (Word == "step")
    return TokenKind::KwStep;
  if (Word == "do")
    return TokenKind::KwDo;
  if (Word == "array")
    return TokenKind::KwArray;
  if (Word == "read")
    return TokenKind::KwRead;
  if (Word == "param")
    return TokenKind::KwParam;
  return TokenKind::Identifier;
}

} // namespace

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Tokens;
  size_t Pos = 0;
  unsigned Line = 1;
  unsigned Column = 1;
  const size_t Size = Source.size();

  auto advance = [&](size_t Count) {
    for (size_t I = 0; I < Count; ++I) {
      if (Source[Pos + I] == '\n') {
        ++Line;
        Column = 1;
      } else {
        ++Column;
      }
    }
    Pos += Count;
  };

  while (Pos < Size) {
    char C = Source[Pos];
    // Skip whitespace.
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      advance(1);
      continue;
    }
    // Skip '#' line comments.
    if (C == '#') {
      size_t End = Pos;
      while (End < Size && Source[End] != '\n')
        ++End;
      advance(End - Pos);
      continue;
    }

    Token Tok;
    Tok.Line = Line;
    Tok.Column = Column;

    if (std::isdigit(static_cast<unsigned char>(C))) {
      size_t End = Pos;
      while (End < Size &&
             std::isdigit(static_cast<unsigned char>(Source[End])))
        ++End;
      Tok.Text = Source.substr(Pos, End - Pos);
      Tok.Kind = TokenKind::Integer;
      // Overflow-checked decimal accumulation.
      CheckedInt Value(0);
      for (char Digit : Tok.Text)
        Value = Value * 10 + (Digit - '0');
      if (Value.valid())
        Tok.IntValue = Value.get();
      else
        Tok.Kind = TokenKind::Invalid;
      advance(End - Pos);
      Tokens.push_back(Tok);
      continue;
    }

    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      size_t End = Pos;
      while (End < Size &&
             (std::isalnum(static_cast<unsigned char>(Source[End])) ||
              Source[End] == '_'))
        ++End;
      Tok.Text = Source.substr(Pos, End - Pos);
      Tok.Kind = keywordKind(Tok.Text);
      advance(End - Pos);
      Tokens.push_back(Tok);
      continue;
    }

    Tok.Text = Source.substr(Pos, 1);
    switch (C) {
    case '+':
      Tok.Kind = TokenKind::Plus;
      break;
    case '-':
      Tok.Kind = TokenKind::Minus;
      break;
    case '*':
      Tok.Kind = TokenKind::Star;
      break;
    case '(':
      Tok.Kind = TokenKind::LParen;
      break;
    case ')':
      Tok.Kind = TokenKind::RParen;
      break;
    case '[':
      Tok.Kind = TokenKind::LBracket;
      break;
    case ']':
      Tok.Kind = TokenKind::RBracket;
      break;
    case '=':
      Tok.Kind = TokenKind::Equals;
      break;
    default:
      Tok.Kind = TokenKind::Invalid;
      break;
    }
    advance(1);
    Tokens.push_back(Tok);
  }

  Token Eof;
  Eof.Kind = TokenKind::Eof;
  Eof.Line = Line;
  Eof.Column = Column;
  Tokens.push_back(Eof);
  return Tokens;
}
