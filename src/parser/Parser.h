//===- parser/Parser.h - LoopLang parser -----------------------*- C++ -*-===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for LoopLang. Grammar:
///
/// \code
///   program  ::= 'program' IDENT decl* stmt* 'end'
///   decl     ::= 'array' IDENT ('[' INT ']')+
///              | 'read' IDENT
///              | 'param' IDENT '=' INT
///   stmt     ::= 'for' IDENT '=' expr 'to' expr ('step' sint)? 'do'
///                    stmt* 'end'
///              | lvalue '=' expr
///   lvalue   ::= IDENT ('[' expr ']')*
///   expr     ::= term (('+'|'-') term)*
///   term     ::= unary ('*' unary)*
///   unary    ::= '-' unary | primary
///   primary  ::= INT | IDENT ('[' expr ']')* | '(' expr ')'
/// \endcode
///
/// 'read n' declares a symbolic (loop-invariant unknown) variable; 'param
/// n = 100' declares a scalar initialized to a constant (which constant
/// propagation folds). Loop variables are declared by their loop and may
/// be reused by disjoint loops, as in Fortran.
///
//===----------------------------------------------------------------------===//

#ifndef EDDA_PARSER_PARSER_H
#define EDDA_PARSER_PARSER_H

#include "ir/Program.h"

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace edda {

/// One parse diagnostic, positioned at a source line/column.
struct Diagnostic {
  unsigned Line;
  unsigned Column;
  std::string Message;

  /// "line:col: message" rendering.
  std::string str() const;
};

/// Outcome of a parse: a program when successful, plus any diagnostics.
struct ParseResult {
  std::optional<Program> Prog;
  std::vector<Diagnostic> Diags;

  bool succeeded() const { return Prog.has_value(); }
};

/// Parses LoopLang source text. Never throws; errors are reported in the
/// result's diagnostics and leave Prog empty.
ParseResult parseProgram(std::string_view Source);

} // namespace edda

#endif // EDDA_PARSER_PARSER_H
