//===- parser/Parser.cpp - LoopLang parser --------------------------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "parser/Parser.h"

#include "parser/Lexer.h"

#include <algorithm>

using namespace edda;

std::string Diagnostic::str() const {
  return std::to_string(Line) + ":" + std::to_string(Column) + ": " +
         Message;
}

namespace {

/// Recursive-descent parser state. Parsing bails out after the first
/// error in a statement but attempts no fancy recovery: LoopLang inputs
/// are machine-generated or tiny.
class ParserImpl {
public:
  explicit ParserImpl(std::string_view Source)
      : Tokens(Lexer(Source).lexAll()) {}

  ParseResult run();

private:
  std::vector<Token> Tokens;
  size_t Pos = 0;
  Program Prog;
  std::vector<Diagnostic> Diags;
  /// Loop variables currently live on the loop stack (to reject nested
  /// reuse of the same induction variable).
  std::vector<unsigned> ActiveLoopVars;

  const Token &peek() const { return Tokens[Pos]; }
  const Token &get() { return Tokens[Pos < Tokens.size() - 1 ? Pos++ : Pos]; }

  bool check(TokenKind Kind) const { return peek().Kind == Kind; }

  bool accept(TokenKind Kind) {
    if (!check(Kind))
      return false;
    get();
    return true;
  }

  bool expect(TokenKind Kind, const char *Context) {
    if (accept(Kind))
      return true;
    error(std::string("expected ") + tokenKindName(Kind) + " " + Context +
          ", found " + tokenKindName(peek().Kind));
    return false;
  }

  void error(std::string Message) {
    Diags.push_back(
        Diagnostic{peek().Line, peek().Column, std::move(Message)});
  }

  void errorAt(const Token &Tok, std::string Message) {
    Diags.push_back(Diagnostic{Tok.Line, Tok.Column, std::move(Message)});
  }

  bool parseDecls();
  bool parseStmts(std::vector<StmtPtr> &Out);
  StmtPtr parseLoop();
  StmtPtr parseAssign();
  ExprPtr parseExpr();
  ExprPtr parseTerm();
  ExprPtr parseUnary();
  ExprPtr parsePrimary();
  /// Parses '[expr]...' subscripts for array \p ArrayId, checking rank.
  bool parseSubscripts(unsigned ArrayId, std::vector<ExprPtr> &Out);
};

ParseResult ParserImpl::run() {
  ParseResult Result;
  if (!expect(TokenKind::KwProgram, "at start of program")) {
    Result.Diags = std::move(Diags);
    return Result;
  }
  if (!check(TokenKind::Identifier)) {
    error("expected program name");
    Result.Diags = std::move(Diags);
    return Result;
  }
  Prog = Program(std::string(get().Text));

  if (!parseDecls() || !parseStmts(Prog.body())) {
    Result.Diags = std::move(Diags);
    return Result;
  }
  if (!expect(TokenKind::KwEnd, "to close the program") ||
      !expect(TokenKind::Eof, "after 'end'")) {
    Result.Diags = std::move(Diags);
    return Result;
  }
  Result.Prog = std::move(Prog);
  Result.Diags = std::move(Diags);
  return Result;
}

bool ParserImpl::parseDecls() {
  while (true) {
    if (accept(TokenKind::KwArray)) {
      if (!check(TokenKind::Identifier)) {
        error("expected array name");
        return false;
      }
      std::string Name(get().Text);
      if (Prog.lookupArray(Name) || Prog.lookupVar(Name)) {
        error("redeclaration of '" + Name + "'");
        return false;
      }
      std::vector<int64_t> Extents;
      while (accept(TokenKind::LBracket)) {
        if (!check(TokenKind::Integer)) {
          error("expected integer array extent");
          return false;
        }
        Extents.push_back(get().IntValue);
        if (!expect(TokenKind::RBracket, "after array extent"))
          return false;
      }
      if (Extents.empty()) {
        error("array '" + Name + "' needs at least one dimension");
        return false;
      }
      Prog.addArray(std::move(Name), std::move(Extents));
      continue;
    }
    if (accept(TokenKind::KwRead)) {
      if (!check(TokenKind::Identifier)) {
        error("expected variable name after 'read'");
        return false;
      }
      std::string Name(get().Text);
      if (Prog.lookupArray(Name) || Prog.lookupVar(Name)) {
        error("redeclaration of '" + Name + "'");
        return false;
      }
      Prog.addVar(std::move(Name), VarKind::Symbolic);
      continue;
    }
    if (accept(TokenKind::KwParam)) {
      if (!check(TokenKind::Identifier)) {
        error("expected variable name after 'param'");
        return false;
      }
      std::string Name(get().Text);
      if (Prog.lookupArray(Name) || Prog.lookupVar(Name)) {
        error("redeclaration of '" + Name + "'");
        return false;
      }
      if (!expect(TokenKind::Equals, "in param declaration"))
        return false;
      bool Negative = accept(TokenKind::Minus);
      if (!check(TokenKind::Integer)) {
        error("expected integer param value");
        return false;
      }
      int64_t Value = get().IntValue;
      if (Negative)
        Value = -Value;
      unsigned Id = Prog.addVar(std::move(Name), VarKind::Scalar);
      // A param is sugar for an initializing scalar assignment; constant
      // propagation folds it away.
      Prog.body().push_back(
          std::make_unique<AssignStmt>(Id, Expr::makeConst(Value)));
      continue;
    }
    return true;
  }
}

bool ParserImpl::parseStmts(std::vector<StmtPtr> &Out) {
  while (true) {
    if (check(TokenKind::KwEnd) || check(TokenKind::Eof))
      return true;
    StmtPtr S;
    if (check(TokenKind::KwFor))
      S = parseLoop();
    else if (check(TokenKind::Identifier))
      S = parseAssign();
    else {
      error(std::string("expected a statement, found ") +
            tokenKindName(peek().Kind));
      return false;
    }
    if (!S)
      return false;
    Out.push_back(std::move(S));
  }
}

StmtPtr ParserImpl::parseLoop() {
  expect(TokenKind::KwFor, "at loop start");
  if (!check(TokenKind::Identifier)) {
    error("expected loop variable name");
    return nullptr;
  }
  std::string Name(get().Text);
  if (Prog.lookupArray(Name)) {
    error("'" + Name + "' is an array, not a loop variable");
    return nullptr;
  }
  unsigned VarId;
  if (std::optional<unsigned> Existing = Prog.lookupVar(Name)) {
    if (Prog.var(*Existing).Kind != VarKind::Loop) {
      error("'" + Name + "' is not usable as a loop variable");
      return nullptr;
    }
    if (std::find(ActiveLoopVars.begin(), ActiveLoopVars.end(),
                  *Existing) != ActiveLoopVars.end()) {
      error("loop variable '" + Name + "' reused by an enclosing loop");
      return nullptr;
    }
    VarId = *Existing;
  } else {
    VarId = Prog.addVar(Name, VarKind::Loop);
  }

  if (!expect(TokenKind::Equals, "after loop variable"))
    return nullptr;
  ExprPtr Lo = parseExpr();
  if (!Lo)
    return nullptr;
  if (!expect(TokenKind::KwTo, "between loop bounds"))
    return nullptr;
  ExprPtr Hi = parseExpr();
  if (!Hi)
    return nullptr;
  if (Lo->containsArrayRead() || Hi->containsArrayRead()) {
    error("array reads are not allowed in loop bounds");
    return nullptr;
  }

  int64_t Step = 1;
  if (accept(TokenKind::KwStep)) {
    bool Negative = accept(TokenKind::Minus);
    if (!check(TokenKind::Integer)) {
      error("expected integer loop step");
      return nullptr;
    }
    Step = get().IntValue;
    if (Negative)
      Step = -Step;
    if (Step == 0) {
      error("loop step must be nonzero");
      return nullptr;
    }
  }
  if (!expect(TokenKind::KwDo, "after loop header"))
    return nullptr;

  auto Loop = std::make_unique<LoopStmt>(VarId, std::move(Lo),
                                         std::move(Hi), Step);
  ActiveLoopVars.push_back(VarId);
  bool BodyOk = parseStmts(Loop->body());
  ActiveLoopVars.pop_back();
  if (!BodyOk)
    return nullptr;
  if (!expect(TokenKind::KwEnd, "to close the loop"))
    return nullptr;
  return Loop;
}

StmtPtr ParserImpl::parseAssign() {
  std::string Name(get().Text);

  if (std::optional<unsigned> ArrayId = Prog.lookupArray(Name)) {
    std::vector<ExprPtr> Subs;
    if (!parseSubscripts(*ArrayId, Subs))
      return nullptr;
    if (!expect(TokenKind::Equals, "in assignment"))
      return nullptr;
    ExprPtr Rhs = parseExpr();
    if (!Rhs)
      return nullptr;
    return std::make_unique<AssignStmt>(*ArrayId, std::move(Subs),
                                        std::move(Rhs));
  }

  unsigned VarId;
  if (std::optional<unsigned> Existing = Prog.lookupVar(Name)) {
    if (Prog.var(*Existing).Kind == VarKind::Loop &&
        std::find(ActiveLoopVars.begin(), ActiveLoopVars.end(),
                  *Existing) != ActiveLoopVars.end()) {
      error("assignment to active loop variable '" + Name + "'");
      return nullptr;
    }
    if (Prog.var(*Existing).Kind == VarKind::Symbolic) {
      error("assignment to symbolic variable '" + Name + "'");
      return nullptr;
    }
    VarId = *Existing;
  } else {
    VarId = Prog.addVar(Name, VarKind::Scalar);
  }

  if (!expect(TokenKind::Equals, "in assignment"))
    return nullptr;
  ExprPtr Rhs = parseExpr();
  if (!Rhs)
    return nullptr;
  return std::make_unique<AssignStmt>(VarId, std::move(Rhs));
}

bool ParserImpl::parseSubscripts(unsigned ArrayId,
                                 std::vector<ExprPtr> &Out) {
  while (accept(TokenKind::LBracket)) {
    ExprPtr Sub = parseExpr();
    if (!Sub)
      return false;
    Out.push_back(std::move(Sub));
    if (!expect(TokenKind::RBracket, "after subscript"))
      return false;
  }
  unsigned Rank = Prog.array(ArrayId).rank();
  if (Out.size() != Rank) {
    error("array '" + Prog.array(ArrayId).Name + "' has rank " +
          std::to_string(Rank) + " but " + std::to_string(Out.size()) +
          " subscripts were given");
    return false;
  }
  return true;
}

ExprPtr ParserImpl::parseExpr() {
  ExprPtr Lhs = parseTerm();
  if (!Lhs)
    return nullptr;
  while (true) {
    if (accept(TokenKind::Plus)) {
      ExprPtr Rhs = parseTerm();
      if (!Rhs)
        return nullptr;
      Lhs = Expr::makeAdd(std::move(Lhs), std::move(Rhs));
    } else if (accept(TokenKind::Minus)) {
      ExprPtr Rhs = parseTerm();
      if (!Rhs)
        return nullptr;
      Lhs = Expr::makeSub(std::move(Lhs), std::move(Rhs));
    } else {
      return Lhs;
    }
  }
}

ExprPtr ParserImpl::parseTerm() {
  ExprPtr Lhs = parseUnary();
  if (!Lhs)
    return nullptr;
  while (accept(TokenKind::Star)) {
    ExprPtr Rhs = parseUnary();
    if (!Rhs)
      return nullptr;
    Lhs = Expr::makeMul(std::move(Lhs), std::move(Rhs));
  }
  return Lhs;
}

ExprPtr ParserImpl::parseUnary() {
  if (accept(TokenKind::Minus)) {
    ExprPtr Operand = parseUnary();
    if (!Operand)
      return nullptr;
    return Expr::makeNeg(std::move(Operand));
  }
  return parsePrimary();
}

ExprPtr ParserImpl::parsePrimary() {
  if (check(TokenKind::Integer))
    return Expr::makeConst(get().IntValue);

  if (accept(TokenKind::LParen)) {
    ExprPtr Inner = parseExpr();
    if (!Inner)
      return nullptr;
    if (!expect(TokenKind::RParen, "to close the parenthesis"))
      return nullptr;
    return Inner;
  }

  if (!check(TokenKind::Identifier)) {
    error(std::string("expected an expression, found ") +
          tokenKindName(peek().Kind));
    return nullptr;
  }
  const Token &NameTok = get();
  std::string Name(NameTok.Text);

  if (std::optional<unsigned> ArrayId = Prog.lookupArray(Name)) {
    std::vector<ExprPtr> Subs;
    if (!parseSubscripts(*ArrayId, Subs))
      return nullptr;
    return Expr::makeArrayRead(*ArrayId, std::move(Subs));
  }

  std::optional<unsigned> VarId = Prog.lookupVar(Name);
  if (!VarId) {
    errorAt(NameTok, "use of undeclared variable '" + Name + "'");
    return nullptr;
  }
  return Expr::makeVar(*VarId);
}

} // namespace

ParseResult edda::parseProgram(std::string_view Source) {
  return ParserImpl(Source).run();
}
