//===- parser/Lexer.h - LoopLang lexer -------------------------*- C++ -*-===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for LoopLang, the mini-Fortran-like input language of the
/// dependence analyzer. Line comments start with '#'.
///
//===----------------------------------------------------------------------===//

#ifndef EDDA_PARSER_LEXER_H
#define EDDA_PARSER_LEXER_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace edda {

/// Token kinds; keywords are distinguished from identifiers by the lexer.
enum class TokenKind {
  Eof,
  Identifier,
  Integer,
  // Keywords.
  KwProgram,
  KwEnd,
  KwFor,
  KwTo,
  KwStep,
  KwDo,
  KwArray,
  KwRead,
  KwParam,
  // Punctuation.
  Plus,
  Minus,
  Star,
  LParen,
  RParen,
  LBracket,
  RBracket,
  Equals,
  // Anything unrecognized.
  Invalid,
};

/// Human-readable token kind name, for diagnostics.
const char *tokenKindName(TokenKind Kind);

/// One lexed token. Text points into the lexer's source buffer.
struct Token {
  TokenKind Kind = TokenKind::Eof;
  std::string_view Text;
  int64_t IntValue = 0; ///< Set for Integer tokens.
  unsigned Line = 1;    ///< 1-based.
  unsigned Column = 1;  ///< 1-based.
};

/// Lexes an entire LoopLang source buffer into a token vector terminated
/// by an Eof token. The source string must outlive the tokens.
class Lexer {
public:
  explicit Lexer(std::string_view Source) : Source(Source) {}

  /// Lexes all tokens. Invalid characters and out-of-range integers
  /// produce Invalid tokens; the parser reports them.
  std::vector<Token> lexAll();

private:
  std::string_view Source;
};

} // namespace edda

#endif // EDDA_PARSER_LEXER_H
