//===- opt/ScalarPropagation.h - Const prop + forward subst ----*- C++ -*-===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Constant propagation and forward substitution (paper sections 2 and
/// 8): scalar uses are replaced by their known defining expressions when
/// that expression is built only from constants, symbolic constants and
/// loop variables that are still live and unchanged. Constant
/// propagation is the special case of a constant defining expression.
/// The pass is conservative and semantics-preserving: values that might
/// have changed (reassigned inside a loop, or referencing a loop
/// variable that went out of scope or restarted) are forgotten.
///
//===----------------------------------------------------------------------===//

#ifndef EDDA_OPT_SCALARPROPAGATION_H
#define EDDA_OPT_SCALARPROPAGATION_H

#include "ir/Program.h"

namespace edda {

/// Runs constant propagation + forward substitution over \p P.
void propagateScalars(Program &P);

} // namespace edda

#endif // EDDA_OPT_SCALARPROPAGATION_H
