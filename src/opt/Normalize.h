//===- opt/Normalize.h - Loop normalization --------------------*- C++ -*-===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Loop normalization: the paper analyzes "general normalized (we
/// normalize the step size to 1)" loops. A loop for i = L to U step s
/// with constant bounds becomes
///
///   for i_n = 0 to (U - L) div s do
///     i = L + s * i_n
///     <body>
///   end
///
/// where the assignment keeps the original variable's semantics (it now
/// behaves like an ordinary scalar); scalar propagation then substitutes
/// i away inside the body. Loops whose step is already 1, or whose
/// bounds are not constant, are left alone (the analyzer treats
/// unnormalized loops conservatively).
///
//===----------------------------------------------------------------------===//

#ifndef EDDA_OPT_NORMALIZE_H
#define EDDA_OPT_NORMALIZE_H

#include "ir/Program.h"

namespace edda {

/// Normalizes every step != 1 loop with constant bounds in \p P.
void normalizeLoops(Program &P);

} // namespace edda

#endif // EDDA_OPT_NORMALIZE_H
