//===- opt/ScalarPropagation.cpp - Const prop + forward subst -------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "opt/ScalarPropagation.h"

#include "opt/Fold.h"

#include <algorithm>
#include <map>

using namespace edda;

namespace {

/// Collects every variable assigned by a scalar assignment anywhere in
/// \p Body (recursively).
void collectAssignedScalars(const std::vector<StmtPtr> &Body,
                            std::vector<unsigned> &Out) {
  for (const StmtPtr &S : Body) {
    if (S->kind() == StmtKind::Assign) {
      const AssignStmt &A = asAssign(*S);
      if (!A.isArrayLhs())
        Out.push_back(A.lhsScalar());
      continue;
    }
    collectAssignedScalars(asLoop(*S).body(), Out);
  }
}

class Propagator {
public:
  explicit Propagator(Program &P) : P(P) {}

  void run() { walk(P.body()); }

private:
  Program &P;
  /// Known defining expression per assigned variable id.
  std::map<unsigned, ExprPtr> Env;
  /// Loop variables currently in scope, outermost first.
  std::vector<unsigned> ActiveLoops;

  ExprPtr rewrite(const ExprPtr &E) {
    ExprPtr Substituted = E->substitute([this](unsigned VarId) -> ExprPtr {
      auto It = Env.find(VarId);
      return It == Env.end() ? nullptr : It->second;
    });
    return foldExpr(Substituted);
  }

  /// A defining expression may be remembered only when every variable it
  /// references is an in-scope loop variable or a symbolic constant, and
  /// it reads no array element.
  bool isRememberable(const ExprPtr &E) const {
    if (E->containsArrayRead())
      return false;
    std::vector<unsigned> Vars;
    E->collectVars(Vars);
    for (unsigned V : Vars) {
      if (P.var(V).Kind == VarKind::Symbolic)
        continue;
      if (std::find(ActiveLoops.begin(), ActiveLoops.end(), V) !=
          ActiveLoops.end())
        continue;
      return false;
    }
    return true;
  }

  /// Forgets environment entries whose value references \p VarId.
  void killReferencing(unsigned VarId) {
    for (auto It = Env.begin(); It != Env.end();) {
      if (It->second->references(VarId))
        It = Env.erase(It);
      else
        ++It;
    }
  }

  void walk(std::vector<StmtPtr> &Body) {
    for (StmtPtr &S : Body) {
      if (S->kind() == StmtKind::Assign) {
        AssignStmt &A = asAssign(*S);
        if (A.isArrayLhs())
          for (unsigned D = 0; D < A.lhsSubscripts().size(); ++D)
            A.setLhsSubscript(D, rewrite(A.lhsSubscripts()[D]));
        A.setRhs(rewrite(A.rhs()));
        if (!A.isArrayLhs()) {
          unsigned V = A.lhsScalar();
          if (isRememberable(A.rhs()))
            Env[V] = A.rhs();
          else
            Env.erase(V);
          // Entries built from the old value of V are now stale.
          killReferencing(V);
        }
        continue;
      }

      LoopStmt &L = asLoop(*S);
      L.setLo(rewrite(L.lo()));
      L.setHi(rewrite(L.hi()));

      // Entries referencing this loop variable described a previous
      // incarnation of it.
      killReferencing(L.varId());
      Env.erase(L.varId());

      // Scalars assigned inside the body carry iteration-varying values,
      // so their pre-loop bindings cannot be used inside; and bindings
      // created inside must not leak out (the body may execute zero
      // times). Snapshot-and-restrict implements both.
      std::vector<unsigned> Assigned;
      collectAssignedScalars(L.body(), Assigned);
      std::map<unsigned, ExprPtr> Outer = Env;
      for (unsigned V : Assigned)
        Env.erase(V);

      ActiveLoops.push_back(L.varId());
      walk(L.body());
      ActiveLoops.pop_back();

      Env = std::move(Outer);
      for (unsigned V : Assigned)
        Env.erase(V);
      killReferencing(L.varId());
    }
  }
};

} // namespace

void edda::propagateScalars(Program &P) { Propagator(P).run(); }
