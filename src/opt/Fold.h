//===- opt/Fold.h - Constant folding ---------------------------*- C++ -*-===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Constant folding and algebraic simplification of expression trees:
/// the enabling cleanup behind the paper's prepass optimizations
/// (section 2). Folding is overflow-checked; an overflowing operation is
/// left unfolded, which downstream analysis treats as non-affine.
///
//===----------------------------------------------------------------------===//

#ifndef EDDA_OPT_FOLD_H
#define EDDA_OPT_FOLD_H

#include "ir/Program.h"

namespace edda {

/// Returns a simplified equivalent of \p E: constants folded, identity
/// elements dropped, double negation removed, subtraction of a constant
/// canonicalized.
ExprPtr foldExpr(const ExprPtr &E);

/// Folds every expression in \p P (subscripts, right-hand sides, loop
/// bounds).
void foldConstants(Program &P);

} // namespace edda

#endif // EDDA_OPT_FOLD_H
