//===- opt/Normalize.cpp - Loop normalization ------------------------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "opt/Normalize.h"

#include "opt/Fold.h"
#include "support/IntMath.h"

using namespace edda;

namespace {

void normalizeBody(Program &P, std::vector<StmtPtr> &Body) {
  for (StmtPtr &S : Body) {
    if (S->kind() != StmtKind::Loop)
      continue;
    LoopStmt &L = asLoop(*S);
    normalizeBody(P, L.body());
    if (L.step() == 1)
      continue;

    ExprPtr Lo = foldExpr(L.lo());
    ExprPtr Hi = foldExpr(L.hi());
    if (Lo->kind() != ExprKind::Const || Hi->kind() != ExprKind::Const)
      continue; // non-constant bounds with a stride: leave unnormalized

    int64_t LoV = Lo->constValue();
    int64_t HiV = Hi->constValue();
    int64_t Step = L.step();
    // Trip count - 1: for positive steps iterate while i <= Hi, for
    // negative while i >= Hi.
    std::optional<int64_t> Span = Step > 0 ? checkedSub(HiV, LoV)
                                           : checkedSub(LoV, HiV);
    if (!Span)
      continue;
    int64_t Count = floorDiv(*Span, Step > 0 ? Step : -Step);
    if (*Span < 0)
      Count = -1; // empty loop: normalized range 0..-1

    // Fresh normalized induction variable.
    std::string BaseName = P.var(L.varId()).Name + "__n";
    std::string Name = BaseName;
    unsigned Suffix = 0;
    while (P.lookupVar(Name) || P.lookupArray(Name))
      Name = BaseName + std::to_string(++Suffix);
    unsigned NormVar = P.addVar(Name, VarKind::Loop);

    auto NewLoop = std::make_unique<LoopStmt>(
        NormVar, Expr::makeConst(0), Expr::makeConst(Count), 1);
    // i = L + s * i_n keeps the original variable live for the body and
    // for code after the loop; scalar propagation substitutes it away.
    ExprPtr Recompute = Expr::makeAdd(
        Expr::makeConst(LoV),
        Expr::makeMul(Expr::makeConst(Step), Expr::makeVar(NormVar)));
    NewLoop->body().push_back(std::make_unique<AssignStmt>(
        L.varId(), std::move(Recompute)));
    for (StmtPtr &Child : L.body())
      NewLoop->body().push_back(std::move(Child));
    S = std::move(NewLoop);
  }
}

} // namespace

void edda::normalizeLoops(Program &P) { normalizeBody(P, P.body()); }
