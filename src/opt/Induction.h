//===- opt/Induction.h - Induction variable substitution -------*- C++ -*-===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Induction variable substitution (paper sections 2 and 8): a scalar k
/// whose only assignment inside a normalized loop over i (lower bound L)
/// is a single top-level k = k + c with known entry value E0 takes the
/// value E0 + c*(i - L) before the increment and E0 + c*(i - L) + c
/// after it; its uses are rewritten accordingly, turning subscripts like
/// a[k + n] into affine functions of i. The increment statement is kept
/// (the pass is purely a use-rewrite and preserves semantics).
///
//===----------------------------------------------------------------------===//

#ifndef EDDA_OPT_INDUCTION_H
#define EDDA_OPT_INDUCTION_H

#include "ir/Program.h"

namespace edda {

/// Runs induction variable substitution over \p P. Loops must already be
/// normalized (step 1); loops with other steps are skipped.
void substituteInductionVariables(Program &P);

} // namespace edda

#endif // EDDA_OPT_INDUCTION_H
