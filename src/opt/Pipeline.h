//===- opt/Pipeline.h - Prepass optimization pipeline ----------*- C++ -*-===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The prepass pipeline the paper relies on (sections 2 and 8) to make
/// subscripts and bounds affine: constant folding, scalar propagation
/// (constant propagation + forward substitution), loop normalization and
/// induction variable substitution, in an order where each pass enables
/// the next.
///
//===----------------------------------------------------------------------===//

#ifndef EDDA_OPT_PIPELINE_H
#define EDDA_OPT_PIPELINE_H

#include "ir/Program.h"

namespace edda {

/// Runs the full prepass: fold, propagate, normalize, propagate,
/// induction-substitute, propagate, fold.
void runPrepass(Program &P);

} // namespace edda

#endif // EDDA_OPT_PIPELINE_H
