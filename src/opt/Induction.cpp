//===- opt/Induction.cpp - Induction variable substitution ----------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "opt/Induction.h"

#include "opt/Fold.h"

#include <algorithm>
#include <map>

using namespace edda;

namespace {

/// Matches k = k + c / k = k - c / k = c + k with constant c; returns
/// the increment.
std::optional<int64_t> matchIncrement(const AssignStmt &A) {
  if (A.isArrayLhs())
    return std::nullopt;
  unsigned K = A.lhsScalar();
  const ExprPtr &Rhs = A.rhs();
  if (Rhs->kind() == ExprKind::Add) {
    const ExprPtr &L = Rhs->lhs();
    const ExprPtr &R = Rhs->rhs();
    if (L->kind() == ExprKind::Var && L->varId() == K &&
        R->kind() == ExprKind::Const)
      return R->constValue();
    if (R->kind() == ExprKind::Var && R->varId() == K &&
        L->kind() == ExprKind::Const)
      return L->constValue();
  }
  if (Rhs->kind() == ExprKind::Sub) {
    const ExprPtr &L = Rhs->lhs();
    const ExprPtr &R = Rhs->rhs();
    if (L->kind() == ExprKind::Var && L->varId() == K &&
        R->kind() == ExprKind::Const) {
      // k - INT64_MIN would overflow on negation; just skip it.
      if (R->constValue() == INT64_MIN)
        return std::nullopt;
      return -R->constValue();
    }
  }
  return std::nullopt;
}

void countScalarAssignments(const std::vector<StmtPtr> &Body,
                            std::map<unsigned, unsigned> &Counts) {
  for (const StmtPtr &S : Body) {
    if (S->kind() == StmtKind::Assign) {
      const AssignStmt &A = asAssign(*S);
      if (!A.isArrayLhs())
        ++Counts[A.lhsScalar()];
      continue;
    }
    countScalarAssignments(asLoop(*S).body(), Counts);
  }
}

class InductionPass {
public:
  explicit InductionPass(Program &P) : P(P) {}

  void run() { walk(P.body()); }

private:
  Program &P;
  /// Known entry-value expressions for scalars, maintained with the same
  /// conservative rules as ScalarPropagation (but without rewriting
  /// uses; that is the other pass's job).
  std::map<unsigned, ExprPtr> Env;
  std::vector<unsigned> ActiveLoops;

  bool isRememberable(const ExprPtr &E) const {
    if (E->containsArrayRead())
      return false;
    std::vector<unsigned> Vars;
    E->collectVars(Vars);
    for (unsigned V : Vars) {
      if (P.var(V).Kind == VarKind::Symbolic)
        continue;
      if (std::find(ActiveLoops.begin(), ActiveLoops.end(), V) !=
          ActiveLoops.end())
        continue;
      return false;
    }
    return true;
  }

  void killReferencing(unsigned VarId) {
    for (auto It = Env.begin(); It != Env.end();) {
      if (It->second->references(VarId))
        It = Env.erase(It);
      else
        ++It;
    }
  }

  /// Replaces uses of the variables in \p Values inside \p E.
  static ExprPtr substituteUses(const ExprPtr &E,
                                const std::map<unsigned, ExprPtr> &Values) {
    ExprPtr Out = E->substitute([&Values](unsigned VarId) -> ExprPtr {
      auto It = Values.find(VarId);
      return It == Values.end() ? nullptr : It->second;
    });
    return foldExpr(Out);
  }

  static void rewriteStmtUses(Stmt &S,
                              const std::map<unsigned, ExprPtr> &Values);

  void walk(std::vector<StmtPtr> &Body) {
    for (StmtPtr &S : Body) {
      if (S->kind() == StmtKind::Assign) {
        AssignStmt &A = asAssign(*S);
        if (!A.isArrayLhs()) {
          unsigned V = A.lhsScalar();
          if (isRememberable(A.rhs()))
            Env[V] = A.rhs();
          else
            Env.erase(V);
          killReferencing(V);
        }
        continue;
      }

      LoopStmt &L = asLoop(*S);
      killReferencing(L.varId());
      Env.erase(L.varId());

      if (L.step() == 1)
        rewriteInductionsIn(L);

      std::vector<unsigned> Assigned;
      collectAssigned(L.body(), Assigned);
      std::map<unsigned, ExprPtr> Outer = Env;
      for (unsigned V : Assigned)
        Env.erase(V);

      ActiveLoops.push_back(L.varId());
      walk(L.body());
      ActiveLoops.pop_back();

      Env = std::move(Outer);
      for (unsigned V : Assigned)
        Env.erase(V);
      killReferencing(L.varId());
    }
  }

  static void collectAssigned(const std::vector<StmtPtr> &Body,
                              std::vector<unsigned> &Out) {
    std::map<unsigned, unsigned> Counts;
    countScalarAssignments(Body, Counts);
    for (const auto &[V, Count] : Counts) {
      (void)Count;
      Out.push_back(V);
    }
  }

  void rewriteInductionsIn(LoopStmt &L) {
    // Candidates: direct children k = k + c whose variable is assigned
    // exactly once in the whole body and has a known entry value that
    // does not reference this loop's variable.
    std::map<unsigned, unsigned> Counts;
    countScalarAssignments(L.body(), Counts);

    for (size_t Idx = 0; Idx < L.body().size(); ++Idx) {
      Stmt &Child = *L.body()[Idx];
      if (Child.kind() != StmtKind::Assign)
        continue;
      AssignStmt &A = asAssign(Child);
      std::optional<int64_t> Inc = matchIncrement(A);
      if (!Inc)
        continue;
      unsigned K = A.lhsScalar();
      if (Counts[K] != 1)
        continue;
      auto EnvIt = Env.find(K);
      if (EnvIt == Env.end() || EnvIt->second->references(L.varId()))
        continue;

      // Pre-increment value: E0 + c*(i - L); post adds one more c.
      ExprPtr IterCount =
          Expr::makeSub(Expr::makeVar(L.varId()), L.lo());
      ExprPtr Pre = foldExpr(Expr::makeAdd(
          EnvIt->second,
          Expr::makeMul(Expr::makeConst(*Inc), IterCount)));
      ExprPtr Post =
          foldExpr(Expr::makeAdd(Pre, Expr::makeConst(*Inc)));

      std::map<unsigned, ExprPtr> PreMap{{K, Pre}};
      std::map<unsigned, ExprPtr> PostMap{{K, Post}};
      for (size_t J = 0; J < L.body().size(); ++J) {
        if (J == Idx) {
          // The increment reads the pre value; rewrite its RHS so the
          // stored value stays correct.
          A.setRhs(substituteUses(A.rhs(), PreMap));
          continue;
        }
        rewriteStmtUses(*L.body()[J], J < Idx ? PreMap : PostMap);
      }
    }
  }
};

void InductionPass::rewriteStmtUses(
    Stmt &S, const std::map<unsigned, ExprPtr> &Values) {
  if (S.kind() == StmtKind::Assign) {
    AssignStmt &A = asAssign(S);
    if (A.isArrayLhs())
      for (unsigned D = 0; D < A.lhsSubscripts().size(); ++D)
        A.setLhsSubscript(D, substituteUses(A.lhsSubscripts()[D], Values));
    A.setRhs(substituteUses(A.rhs(), Values));
    return;
  }
  LoopStmt &L = asLoop(S);
  L.setLo(substituteUses(L.lo(), Values));
  L.setHi(substituteUses(L.hi(), Values));
  for (StmtPtr &Child : L.body())
    rewriteStmtUses(*Child, Values);
}

} // namespace

void edda::substituteInductionVariables(Program &P) {
  InductionPass(P).run();
}
