//===- opt/Fold.cpp - Constant folding ------------------------------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "opt/Fold.h"

#include "support/IntMath.h"

using namespace edda;

namespace {

/// Rebuilds an affine form as a canonical expression tree: terms in
/// variable-id order, constant last, negative parts via subtraction.
ExprPtr affineToExpr(const AffineExpr &A) {
  ExprPtr Out;
  for (const AffineExpr::Term &T : A.terms()) {
    int64_t Coeff = T.Coeff;
    bool Negative = Coeff < 0;
    // INT64_MIN magnitude is not negatable; bail to the caller.
    if (Coeff == INT64_MIN)
      return nullptr;
    int64_t Mag = Negative ? -Coeff : Coeff;
    ExprPtr Term = Mag == 1 ? Expr::makeVar(T.VarId)
                            : Expr::makeMul(Expr::makeConst(Mag),
                                            Expr::makeVar(T.VarId));
    if (!Out)
      Out = Negative ? Expr::makeNeg(std::move(Term)) : std::move(Term);
    else
      Out = Negative ? Expr::makeSub(std::move(Out), std::move(Term))
                     : Expr::makeAdd(std::move(Out), std::move(Term));
  }
  if (!Out)
    return Expr::makeConst(A.constant());
  if (A.constant() > 0)
    Out = Expr::makeAdd(std::move(Out), Expr::makeConst(A.constant()));
  else if (A.constant() < 0) {
    if (A.constant() == INT64_MIN)
      return nullptr;
    Out = Expr::makeSub(std::move(Out),
                        Expr::makeConst(-A.constant()));
  }
  return Out;
}

/// Canonicalizes arithmetic trees through the affine form when possible
/// (combining like terms and constants across parentheses), otherwise
/// returns the input unchanged.
ExprPtr canonicalize(ExprPtr E) {
  switch (E->kind()) {
  case ExprKind::Add:
  case ExprKind::Sub:
  case ExprKind::Mul:
  case ExprKind::Neg:
    break;
  default:
    return E;
  }
  std::optional<AffineExpr> A = toAffine(E);
  if (!A || A->overflowed())
    return E;
  if (ExprPtr Canonical = affineToExpr(*A))
    return Canonical;
  return E;
}

/// Structural folding (constants, identities); canonicalization runs on
/// top of this in foldExpr.
ExprPtr foldStructural(const ExprPtr &E) {
  switch (E->kind()) {
  case ExprKind::Const:
  case ExprKind::Var:
    return E;
  case ExprKind::ArrayRead: {
    std::vector<ExprPtr> Subs;
    Subs.reserve(E->subscripts().size());
    for (const ExprPtr &S : E->subscripts())
      Subs.push_back(foldExpr(S));
    return Expr::makeArrayRead(E->arrayId(), std::move(Subs));
  }
  case ExprKind::Neg: {
    ExprPtr L = foldExpr(E->lhs());
    if (L->kind() == ExprKind::Const) {
      if (std::optional<int64_t> V = checkedNeg(L->constValue()))
        return Expr::makeConst(*V);
    }
    if (L->kind() == ExprKind::Neg)
      return L->lhs(); // --x == x
    return Expr::makeNeg(std::move(L));
  }
  case ExprKind::Add: {
    ExprPtr L = foldExpr(E->lhs());
    ExprPtr R = foldExpr(E->rhs());
    if (L->kind() == ExprKind::Const && R->kind() == ExprKind::Const) {
      if (std::optional<int64_t> V =
              checkedAdd(L->constValue(), R->constValue()))
        return Expr::makeConst(*V);
    }
    if (L->kind() == ExprKind::Const && L->constValue() == 0)
      return R;
    if (R->kind() == ExprKind::Const && R->constValue() == 0)
      return L;
    return Expr::makeAdd(std::move(L), std::move(R));
  }
  case ExprKind::Sub: {
    ExprPtr L = foldExpr(E->lhs());
    ExprPtr R = foldExpr(E->rhs());
    if (L->kind() == ExprKind::Const && R->kind() == ExprKind::Const) {
      if (std::optional<int64_t> V =
              checkedSub(L->constValue(), R->constValue()))
        return Expr::makeConst(*V);
    }
    if (R->kind() == ExprKind::Const && R->constValue() == 0)
      return L;
    if (L->kind() == ExprKind::Const && L->constValue() == 0)
      return foldExpr(Expr::makeNeg(std::move(R)));
    return Expr::makeSub(std::move(L), std::move(R));
  }
  case ExprKind::Mul: {
    ExprPtr L = foldExpr(E->lhs());
    ExprPtr R = foldExpr(E->rhs());
    if (L->kind() == ExprKind::Const && R->kind() == ExprKind::Const) {
      if (std::optional<int64_t> V =
              checkedMul(L->constValue(), R->constValue()))
        return Expr::makeConst(*V);
    }
    for (int Side = 0; Side < 2; ++Side) {
      const ExprPtr &C = Side == 0 ? L : R;
      const ExprPtr &Other = Side == 0 ? R : L;
      if (C->kind() != ExprKind::Const)
        continue;
      if (C->constValue() == 0)
        return Expr::makeConst(0);
      if (C->constValue() == 1)
        return Other;
      if (C->constValue() == -1)
        return foldExpr(Expr::makeNeg(Other));
    }
    return Expr::makeMul(std::move(L), std::move(R));
  }
  }
  assert(false && "unknown expression kind");
  return E;
}

} // namespace

ExprPtr edda::foldExpr(const ExprPtr &E) {
  return canonicalize(foldStructural(E));
}

namespace {

void foldStmt(Stmt &S) {
  if (S.kind() == StmtKind::Assign) {
    AssignStmt &A = asAssign(S);
    if (A.isArrayLhs())
      for (unsigned D = 0; D < A.lhsSubscripts().size(); ++D)
        A.setLhsSubscript(D, foldExpr(A.lhsSubscripts()[D]));
    A.setRhs(foldExpr(A.rhs()));
    return;
  }
  LoopStmt &L = asLoop(S);
  L.setLo(foldExpr(L.lo()));
  L.setHi(foldExpr(L.hi()));
  for (StmtPtr &Child : L.body())
    foldStmt(*Child);
}

} // namespace

void edda::foldConstants(Program &P) {
  for (StmtPtr &S : P.body())
    foldStmt(*S);
}
