//===- opt/Pipeline.cpp - Prepass optimization pipeline --------------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "opt/Pipeline.h"

#include "opt/Fold.h"
#include "opt/Induction.h"
#include "opt/Normalize.h"
#include "opt/ScalarPropagation.h"

using namespace edda;

void edda::runPrepass(Program &P) {
  foldConstants(P);
  // Resolve params and simple scalars so strided loops get constant
  // bounds before normalization.
  propagateScalars(P);
  normalizeLoops(P);
  // Substitute the i = L + s*i_n recomputations normalization inserted.
  propagateScalars(P);
  // Induction rewriting needs normalized loops and entry values.
  substituteInductionVariables(P);
  propagateScalars(P);
  foldConstants(P);
}
