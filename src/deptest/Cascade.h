//===- deptest/Cascade.h - Cascaded exact dependence testing ---*- C++ -*-===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's central contribution (section 3): a cascade of special
/// case exact tests ordered by cost. Applicability of each test is
/// checked cheaply; at most one decisive test is ever applied:
///
///   array constants -> extended GCD -> SVPC -> Acyclic -> Loop Residue
///   -> Fourier-Motzkin (backup)
///
/// Every answer except Fourier-Motzkin budget exhaustion is exact; a
/// Dependent answer comes with an integer witness in the problem's x
/// space so exactness is machine-checkable.
///
//===----------------------------------------------------------------------===//

#ifndef EDDA_DEPTEST_CASCADE_H
#define EDDA_DEPTEST_CASCADE_H

#include "deptest/FourierMotzkin.h"
#include "deptest/Problem.h"
#include "deptest/Stats.h"

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

namespace edda {

class TestPipeline;

/// Three-valued dependence answer. Unknown is conservatively treated as
/// dependent by clients.
enum class DepAnswer {
  Independent,
  Dependent,
  Unknown,
};

/// Knobs for the cascade.
struct CascadeOptions {
  FourierMotzkinOptions Fm;
  /// The paper's convention: loops that cannot be proved empty are
  /// assumed to execute (an empty loop has no dependences but also
  /// nothing to parallelize). Constant-bound empty loops are still
  /// detected exactly.
  bool AssumeNonEmptyLoops = true;
  /// The stage pipeline to run; null selects
  /// TestPipeline::defaultPipeline() (the paper's cascade). Parse a spec
  /// string once with makePipeline() and share the result — see
  /// TestPipeline.h.
  std::shared_ptr<const TestPipeline> Pipeline;
  /// Retry poisoned 64-bit computations at 128 bits before giving up
  /// (the widening ladder). The 64-bit fast path is unchanged; disable
  /// to reproduce the historical 64-bit-only behavior.
  bool Widen = true;
};

/// Result of one cascaded dependence test.
struct CascadeResult {
  DepAnswer Answer = DepAnswer::Unknown;
  /// The test that decided (see TestKind ordering).
  TestKind DecidedBy = TestKind::Unanalyzable;
  /// False only for Unknown answers.
  bool Exact = false;
  /// Witness iteration vector in x space when Dependent (absent if
  /// witness reconstruction overflowed; the answer is still exact).
  std::optional<std::vector<int64_t>> Witness;
  /// True when the decision needed the 128-bit retry tier (the 64-bit
  /// computation overflowed). The answer is exactly as trustworthy
  /// either way; this records that the fast path alone was not enough.
  bool Widened = false;
};

/// Runs the cascade on \p Problem. Decision counters are recorded into
/// \p Stats when provided.
CascadeResult testDependence(const DependenceProblem &Problem,
                             const CascadeOptions &Opts = {},
                             DepStats *Stats = nullptr);

/// Runs the cascade with extra linear constraints over x (each form
/// required <= 0); this is how direction vector constraints are imposed
/// (paper section 6).
CascadeResult
testDependenceConstrained(const DependenceProblem &Problem,
                          const std::vector<XAffine> &ExtraLe0,
                          const CascadeOptions &Opts = {},
                          DepStats *Stats = nullptr);

/// Checks a witness against the problem (equations, bounds, and any
/// extra constraints). Used by tests and debug assertions.
bool verifyWitness(const DependenceProblem &Problem,
                   const std::vector<int64_t> &X,
                   const std::vector<XAffine> &ExtraLe0 = {});

} // namespace edda

#endif // EDDA_DEPTEST_CASCADE_H
