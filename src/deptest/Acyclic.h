//===- deptest/Acyclic.h - The Acyclic test --------------------*- C++ -*-===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Acyclic test (paper section 3.3), for systems where some
/// constraint has more than one variable. A variable that the
/// multi-variable constraints bound in only one direction can be pinned
/// to its opposite interval endpoint (or discarded entirely when it has
/// no such endpoint) without changing satisfiability; substituting and
/// repeating either empties the system (exact answer) or leaves a cyclic
/// core for the Loop Residue test. This is the paper's "no graph needed"
/// formulation, which it notes is equivalent to eliminating depth-first
/// over the acyclic constraint graph; the explicit graph is still built
/// by graph() for diagnostics and the Figure 1 demo.
///
/// Templated on the scalar type for the widening ladder: int64_t is the
/// fast path, Int128 the retry tier.
///
//===----------------------------------------------------------------------===//

#ifndef EDDA_DEPTEST_ACYCLIC_H
#define EDDA_DEPTEST_ACYCLIC_H

#include "deptest/Svpc.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace edda {

/// One elimination step performed by the Acyclic test, recorded so that a
/// witness point can be reconstructed after a later test decides the
/// simplified system.
template <typename T> struct AcyclicEliminationT {
  unsigned Var;
  /// True when the variable was pinned to a concrete interval endpoint;
  /// false when it was unbounded on the needed side and dropped together
  /// with its constraints.
  bool Pinned;
  /// The pinned value (when Pinned).
  T Value = T(0);
  /// True when the multi-variable constraints only bounded the variable
  /// from above (so a dropped variable must be pushed low enough).
  bool UpperBounded = false;
  /// The constraints removed together with a dropped variable.
  std::vector<LinearConstraintT<T>> DroppedConstraints;
};

/// Outcome of the Acyclic test.
template <typename T> struct AcyclicResultT {
  enum class Status {
    Independent, ///< Exact: substitution exposed a contradiction.
    Dependent,   ///< Exact: every multi-variable constraint eliminated.
    NeedsMore,   ///< A cyclic core remains; cascade onward.
    Overflow,    ///< Arithmetic gave up; widen or fall back.
  };

  Status St = Status::NeedsMore;
  /// Updated intervals (substitution turns multi-variable constraints
  /// into interval tightenings).
  VarIntervalsT<T> Intervals{0};
  /// The surviving (cyclic) multi-variable constraints.
  std::vector<LinearConstraintT<T>> Remaining;
  /// Elimination log, in elimination order.
  std::vector<AcyclicEliminationT<T>> Log;
  /// Witness when Dependent.
  std::optional<std::vector<T>> Sample;
};

/// The 64-bit fast-path instantiations (the historical names).
using AcyclicElimination = AcyclicEliminationT<int64_t>;
using AcyclicResult = AcyclicResultT<int64_t>;

/// Runs the Acyclic test. \p NumVars is the t-space arity; \p MultiVar
/// are the multi-variable constraints surviving SVPC; \p Intervals the
/// SVPC intervals (consumed by value, updated in the result).
template <typename T>
AcyclicResultT<T> runAcyclic(unsigned NumVars,
                             std::vector<LinearConstraintT<T>> MultiVar,
                             VarIntervalsT<T> Intervals);

/// Completes a witness for the simplified system into a witness for the
/// pre-Acyclic system by replaying the elimination log backwards.
/// \p Sample holds values for the surviving variables (entries for
/// eliminated variables are overwritten). Returns false on overflow.
template <typename T>
bool completeSample(std::vector<T> &Sample,
                    const std::vector<AcyclicEliminationT<T>> &Log,
                    const VarIntervalsT<T> &Intervals);

/// The paper's constraint graph for the Acyclic test: two nodes per
/// variable (i for the upper-bounded role, -i for the lower-bounded
/// role), an edge for every variable pair in a shared constraint.
/// Returned in a printable form for diagnostics and the examples.
struct AcyclicGraph {
  struct Edge {
    /// Signed node encoding: +(<var>+1) or -(<var>+1).
    int From;
    int To;
  };
  std::vector<Edge> Edges;
  bool hasCycle() const;
  std::string str() const;
};

/// Builds the explicit two-node-per-variable graph of paper section 3.3.
AcyclicGraph buildAcyclicGraph(unsigned NumVars,
                               const std::vector<LinearConstraint> &MultiVar);

} // namespace edda

#endif // EDDA_DEPTEST_ACYCLIC_H
