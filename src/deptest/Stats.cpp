//===- deptest/Stats.cpp - Dependence test statistics ---------------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "deptest/Stats.h"

using namespace edda;

const char *edda::testKindName(TestKind Kind) {
  switch (Kind) {
  case TestKind::ArrayConstant:
    return "Constant";
  case TestKind::GcdTest:
    return "GCD";
  case TestKind::Svpc:
    return "SVPC";
  case TestKind::Acyclic:
    return "Acyclic";
  case TestKind::LoopResidue:
    return "LoopResidue";
  case TestKind::FourierMotzkin:
    return "Fourier-Motzkin";
  case TestKind::Unanalyzable:
    return "Unanalyzable";
  }
  return "unknown";
}

uint64_t DepStats::totalDecided() const {
  uint64_t Total = 0;
  for (uint64_t Count : Decided)
    Total += Count;
  return Total;
}

DepStats &DepStats::operator+=(const DepStats &RHS) {
  for (unsigned K = 0; K < NumTestKinds; ++K) {
    Decided[K] += RHS.Decided[K];
    DecidedIndependent[K] += RHS.DecidedIndependent[K];
  }
  Queries += RHS.Queries;
  MemoHitsFull += RHS.MemoHitsFull;
  MemoHitsNoBounds += RHS.MemoHitsNoBounds;
  return *this;
}

std::string DepStats::str() const {
  std::string Out;
  for (unsigned K = 0; K < NumTestKinds; ++K) {
    if (Decided[K] == 0)
      continue;
    Out += std::string(testKindName(static_cast<TestKind>(K))) + ": " +
           std::to_string(Decided[K]) + " decided, " +
           std::to_string(DecidedIndependent[K]) + " independent\n";
  }
  Out += "queries: " + std::to_string(Queries) +
         ", memo hits (full): " + std::to_string(MemoHitsFull) +
         ", memo hits (no bounds): " + std::to_string(MemoHitsNoBounds) +
         "\n";
  return Out;
}
