//===- deptest/Stats.cpp - Dependence test statistics ---------------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "deptest/Stats.h"

#include "deptest/TestPipeline.h"

#include <algorithm>

using namespace edda;

const char *edda::testKindName(TestKind Kind) {
  switch (Kind) {
  case TestKind::ArrayConstant:
    return "Constant";
  case TestKind::GcdTest:
    return "GCD";
  case TestKind::Svpc:
    return "SVPC";
  case TestKind::Acyclic:
    return "Acyclic";
  case TestKind::LoopResidue:
    return "LoopResidue";
  case TestKind::FourierMotzkin:
    return "Fourier-Motzkin";
  case TestKind::Banerjee:
    return "Banerjee";
  case TestKind::Unanalyzable:
    return "Unanalyzable";
  }
  return "unknown";
}

uint64_t DepStats::totalDecided() const {
  uint64_t Total = 0;
  for (uint64_t Count : Decided)
    Total += Count;
  return Total;
}

DepStats &DepStats::operator+=(const DepStats &RHS) {
  for (unsigned K = 0; K < NumTestKinds; ++K) {
    Decided[K] += RHS.Decided[K];
    DecidedIndependent[K] += RHS.DecidedIndependent[K];
  }
  size_t NumStages = std::max(StageDecided.size(), RHS.StageDecided.size());
  if (StageDecided.size() < NumStages) {
    StageDecided.resize(NumStages);
    StageIndependent.resize(NumStages);
    StageOverflow.resize(NumStages);
    StageWiden.resize(NumStages);
  }
  for (unsigned S = 0; S < RHS.StageDecided.size(); ++S) {
    StageDecided[S] += RHS.StageDecided[S];
    StageIndependent[S] += RHS.StageIndependent[S];
    StageOverflow[S] += RHS.StageOverflow[S];
    StageWiden[S] += RHS.StageWiden[S];
  }
  Queries += RHS.Queries;
  MemoHitsFull += RHS.MemoHitsFull;
  MemoHitsNoBounds += RHS.MemoHitsNoBounds;
  WidenedQueries += RHS.WidenedQueries;
  FmWork += RHS.FmWork;
  return *this;
}

std::string DepStats::str() const {
  std::string Out;
  for (unsigned K = 0; K < NumTestKinds; ++K) {
    if (Decided[K] == 0)
      continue;
    Out += std::string(testKindName(static_cast<TestKind>(K))) + ": " +
           std::to_string(Decided[K]) + " decided, " +
           std::to_string(DecidedIndependent[K]) + " independent\n";
  }
  for (unsigned S = 0; S < StageOverflow.size(); ++S) {
    if (StageOverflow[S] == 0)
      continue;
    Out += std::string("overflow in stage '") + stageName(S) +
           "': " + std::to_string(StageOverflow[S]) + "\n";
  }
  for (unsigned S = 0; S < StageWiden.size(); ++S) {
    if (StageWiden[S] == 0)
      continue;
    Out += std::string("widened in stage '") + stageName(S) +
           "': " + std::to_string(StageWiden[S]) + "\n";
  }
  Out += "queries: " + std::to_string(Queries) +
         ", memo hits (full): " + std::to_string(MemoHitsFull) +
         ", memo hits (no bounds): " + std::to_string(MemoHitsNoBounds) +
         ", widened: " + std::to_string(WidenedQueries) + "\n";
  return Out;
}
