//===- deptest/TestPipeline.cpp - Pluggable dependence-test pipeline ------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "deptest/TestPipeline.h"

#include "deptest/Banerjee.h"
#include "deptest/Direction.h"
#include "deptest/LoopResidue.h"
#include "support/IntMath.h"
#include "support/WideInt.h"

#include <cassert>
#include <chrono>
#include <cstdio>

using namespace edda;

//===----------------------------------------------------------------------===//
// PipelineContext
//===----------------------------------------------------------------------===//

namespace {

/// Lifts a 64-bit Diophantine solution to the 128-bit tier verbatim:
/// the solved numbers are exact, only their width changes.
DiophantineSolutionT<Int128> widenSolution(const DiophantineSolution &S) {
  DiophantineSolutionT<Int128> W;
  W.Solvable = S.Solvable;
  W.Overflow = false;
  W.NumX = S.NumX;
  W.NumFree = S.NumFree;
  W.Offset = widenVec(S.Offset);
  W.FreeRows = MatrixT<Int128>(S.FreeRows.rows(), S.FreeRows.cols());
  for (unsigned R = 0; R < S.FreeRows.rows(); ++R)
    for (unsigned C = 0; C < S.FreeRows.cols(); ++C)
      W.FreeRows.at(R, C) = Int128(S.FreeRows.at(R, C));
  return W;
}

} // namespace

template <typename T>
const DiophantineSolutionT<T> &PipelineContext::solutionT() {
  Artifacts<T> &A = arts<T>();
  if (!A.Solution) {
    if constexpr (std::is_same_v<T, Int128>) {
      // Reuse the narrow solve unless it overflowed: its numbers are
      // exact, so the wide solution is the same solution, widened.
      const DiophantineSolution &NS = solutionT<int64_t>();
      if (!NS.Overflow)
        A.Solution = widenSolution(NS);
      else
        A.Solution = solveEquations<Int128>(Problem);
    } else {
      A.Solution = solveEquations<int64_t>(Problem);
    }
  }
  return *A.Solution;
}

template <typename T> PipelineContext::Prep PipelineContext::prepT() {
  Artifacts<T> &A = arts<T>();
  if constexpr (std::is_same_v<T, Int128>) {
    // When the narrow tier prepped cleanly the wide system is just the
    // widened narrow system; infeasibility is exact at any width. Only
    // a narrow overflow forces the genuine wide rebuild below.
    switch (prepT<int64_t>()) {
    case Prep::Infeasible:
      return Prep::Infeasible;
    case Prep::Ready:
      if (!A.SystemBuilt) {
        A.SystemBuilt = true;
        A.System = widenSystem(systemT<int64_t>());
      }
      return Prep::Ready;
    case Prep::Overflow:
      break;
    }
  }
  const DiophantineSolutionT<T> &Sol = solutionT<T>();
  if (Sol.Overflow)
    return Prep::Overflow;
  if (!Sol.Solvable)
    return Prep::Infeasible;
  if (!A.SystemBuilt) {
    A.SystemBuilt = true;
    std::optional<LinearSystemT<T>> MaybeSystem =
        boundsToFreeSpace(Problem, Sol);
    if (!MaybeSystem) {
      A.SystemOverflow = true;
    } else {
      for (const XAffine &Form : ExtraLe0) {
        std::vector<T> TCoeffs;
        T TConst{};
        if (!projectToFree(Form, Sol, TCoeffs, TConst)) {
          A.SystemOverflow = true;
          break;
        }
        std::optional<T> Bound = checkedNeg(TConst);
        if (!Bound) {
          A.SystemOverflow = true;
          break;
        }
        MaybeSystem->addLe(std::move(TCoeffs), *Bound);
      }
      if (!A.SystemOverflow)
        A.System = std::move(*MaybeSystem);
    }
  }
  return A.SystemOverflow ? Prep::Overflow : Prep::Ready;
}

template <typename T> const LinearSystemT<T> &PipelineContext::systemT() {
  Prep P = prepT<T>();
  (void)P;
  assert(P == Prep::Ready && "system requested without Ready prep");
  return *arts<T>().System;
}

template <typename T> const SvpcResultT<T> &PipelineContext::svpcPassT() {
  Artifacts<T> &A = arts<T>();
  if (!A.Svpc)
    A.Svpc = runSvpc(systemT<T>());
  return *A.Svpc;
}

std::optional<unsigned> PipelineContext::prepOverflowStage() const {
  if (narrowPrepOverflowed()) {
    // All of preprocessing — the Diophantine solve and the free-space
    // rewrite of bounds and direction constraints — lives in
    // ExtendedGcd.*, so its overflows are the GCD stage's regardless of
    // which stage's lazy access tripped them (stage order must not
    // change the attribution).
    if (const DependenceTest *Gcd = stageForKind(TestKind::GcdTest))
      return Gcd->id();
  }
  return std::nullopt;
}

template <typename T>
std::optional<std::vector<int64_t>>
PipelineContext::witnessFromT(const std::vector<T> &TSample) {
  std::optional<std::vector<T>> X = solutionT<T>().instantiate(TSample);
  if (!X)
    return std::nullopt;
  if constexpr (std::is_same_v<T, Int128>)
    return narrowVec(*X);
  else
    return X;
}

namespace edda {
template const DiophantineSolutionT<int64_t> &
PipelineContext::solutionT<int64_t>();
template const DiophantineSolutionT<Int128> &
PipelineContext::solutionT<Int128>();
template PipelineContext::Prep PipelineContext::prepT<int64_t>();
template PipelineContext::Prep PipelineContext::prepT<Int128>();
template const LinearSystemT<int64_t> &PipelineContext::systemT<int64_t>();
template const LinearSystemT<Int128> &PipelineContext::systemT<Int128>();
template const SvpcResultT<int64_t> &PipelineContext::svpcPassT<int64_t>();
template const SvpcResultT<Int128> &PipelineContext::svpcPassT<Int128>();
template std::optional<std::vector<int64_t>>
PipelineContext::witnessFromT<int64_t>(const std::vector<int64_t> &);
template std::optional<std::vector<int64_t>>
PipelineContext::witnessFromT<Int128>(const std::vector<Int128> &);
} // namespace edda

//===----------------------------------------------------------------------===//
// The stages
//===----------------------------------------------------------------------===//

namespace edda {

/// Grants the registry builder access to assign stage ids.
class StageRegistryBuilder {
public:
  static void setId(DependenceTest &T, unsigned Id) { T.Id = Id; }
};

} // namespace edda

namespace {

/// Runs a stage's width-templated body on the 64-bit fast path first,
/// retrying once at 128 bits when that overflowed and widening is
/// enabled. A wide outcome is tagged Widened; when the wide tier also
/// overflows, the narrow overflow stands and the pipeline records its
/// provenance exactly as in the 64-bit-only days.
template <typename StageT>
StageResult runWidened(const StageT &Stage, PipelineContext &Ctx) {
  StageResult Narrow = Stage.template runT<int64_t>(Ctx);
  if (Narrow.St != StageResult::Status::Overflow || !Ctx.options().Widen)
    return Narrow;
  StageResult Wide = Stage.template runT<Int128>(Ctx);
  if (Wide.St == StageResult::Status::Overflow) {
    Narrow.FmWork += Wide.FmWork;
    return Narrow;
  }
  Wide.Widened = true;
  Wide.FmWork += Narrow.FmWork;
  return Wide;
}

/// Shared applicability screen: the free-space system is usable if the
/// 64-bit prep succeeded, or the 128-bit retry can still produce one.
/// (Without this, a narrow prep overflow would skip every stage and the
/// wide tier would never get its chance.)
bool prepUsable(PipelineContext &Ctx) {
  if (Ctx.prep() != PipelineContext::Prep::Overflow)
    return true;
  return Ctx.options().Widen &&
         Ctx.prepT<Int128>() != PipelineContext::Prep::Overflow;
}

/// Step 0 of the cascade (paper Table 1, first column): all-constant
/// subscripts need no dependence testing.
class ArrayConstantStage final : public DependenceTest {
public:
  const char *name() const override { return "const"; }
  const char *label() const override { return "Constant"; }
  const char *description() const override {
    return "all-constant subscripts: nonzero difference is independence, "
           "otherwise dependence hinges only on loops executing";
  }
  TestKind kind() const override { return TestKind::ArrayConstant; }
  bool exact() const override { return true; }

  bool applicable(PipelineContext &Ctx) const override {
    const DependenceProblem &P = Ctx.problem();
    if (P.Equations.empty())
      return true;
    for (const XAffine &Eq : P.Equations)
      if (Eq.isConstant())
        return true;
    return false;
  }

  StageResult run(PipelineContext &Ctx) const override {
    const DependenceProblem &P = Ctx.problem();
    bool AllConstant = true;
    for (const XAffine &Eq : P.Equations) {
      if (!Eq.isConstant()) {
        AllConstant = false;
        continue;
      }
      if (Eq.Const != 0)
        return StageResult::independent();
    }
    if (!AllConstant || !Ctx.extraLe0().empty())
      return StageResult::notApplicable();
    // Detect constant-bound empty loops exactly; otherwise follow the
    // paper and assume enclosing loops execute. When that assumption is
    // disabled the later stages decide bounds feasibility.
    for (unsigned L = 0; L < P.numLoopVars(); ++L) {
      if (P.Lo[L] && P.Hi[L] && P.Lo[L]->isConstant() &&
          P.Hi[L]->isConstant() && P.Lo[L]->Const > P.Hi[L]->Const)
        return StageResult::independent();
    }
    if (Ctx.options().AssumeNonEmptyLoops)
      return StageResult::dependent();
    return StageResult::notApplicable();
  }
};

/// Step 1: extended GCD. Owns all of the shared preprocessing, so a
/// preprocessing overflow surfaces (and is attributed) here when the
/// stage is part of the pipeline.
class GcdStage final : public DependenceTest {
public:
  const char *name() const override { return "gcd"; }
  const char *label() const override { return "GCD"; }
  const char *description() const override {
    return "extended GCD: integer-solves the subscript equations and "
           "rewrites the bounds over the free variables";
  }
  TestKind kind() const override { return TestKind::GcdTest; }
  bool exact() const override { return true; }

  bool applicable(PipelineContext &) const override { return true; }

  StageResult run(PipelineContext &Ctx) const override {
    return runWidened(*this, Ctx);
  }

  template <typename T> StageResult runT(PipelineContext &Ctx) const {
    switch (Ctx.prepT<T>()) {
    case PipelineContext::Prep::Overflow:
      return StageResult::overflow();
    case PipelineContext::Prep::Infeasible:
      return StageResult::independent();
    case PipelineContext::Prep::Ready:
      return StageResult::notApplicable();
    }
    return StageResult::notApplicable();
  }
};

/// Step 2: Single Variable Per Constraint.
class SvpcStage final : public DependenceTest {
public:
  const char *name() const override { return "svpc"; }
  const char *label() const override { return "SVPC"; }
  const char *description() const override {
    return "single variable per constraint: intersects per-variable "
           "integer intervals; exact when no constraint couples variables";
  }
  TestKind kind() const override { return TestKind::Svpc; }
  bool exact() const override { return true; }

  bool applicable(PipelineContext &Ctx) const override {
    return prepUsable(Ctx);
  }

  StageResult run(PipelineContext &Ctx) const override {
    return runWidened(*this, Ctx);
  }

  template <typename T> StageResult runT(PipelineContext &Ctx) const {
    switch (Ctx.prepT<T>()) {
    case PipelineContext::Prep::Overflow:
      return StageResult::overflow();
    case PipelineContext::Prep::Infeasible:
      return StageResult::independent();
    case PipelineContext::Prep::Ready:
      break;
    }
    const SvpcResultT<T> &Svpc = Ctx.svpcPassT<T>();
    switch (Svpc.St) {
    case SvpcResultT<T>::Status::Independent:
      return StageResult::independent();
    case SvpcResultT<T>::Status::Dependent:
      return StageResult::dependent(
          Svpc.Sample ? Ctx.witnessFromT<T>(*Svpc.Sample) : std::nullopt);
    case SvpcResultT<T>::Status::NeedsMore:
      return StageResult::notApplicable();
    case SvpcResultT<T>::Status::Overflow:
      return StageResult::overflow();
    }
    return StageResult::notApplicable();
  }
};

/// Step 3: the Acyclic test on SVPC's leftover multi-variable
/// constraints. Publishes its simplified core for the residue stage.
class AcyclicStage final : public DependenceTest {
public:
  const char *name() const override { return "acyclic"; }
  const char *label() const override { return "Acyclic"; }
  const char *description() const override {
    return "acyclic: pins one-directional variables to interval "
           "endpoints; exact unless a cyclic core remains";
  }
  TestKind kind() const override { return TestKind::Acyclic; }
  bool exact() const override { return true; }

  bool applicable(PipelineContext &Ctx) const override {
    return prepUsable(Ctx);
  }

  StageResult run(PipelineContext &Ctx) const override {
    return runWidened(*this, Ctx);
  }

  template <typename T> StageResult runT(PipelineContext &Ctx) const {
    switch (Ctx.prepT<T>()) {
    case PipelineContext::Prep::Overflow:
      return StageResult::overflow();
    case PipelineContext::Prep::Infeasible:
      return StageResult::independent();
    case PipelineContext::Prep::Ready:
      break;
    }
    const SvpcResultT<T> &Svpc = Ctx.svpcPassT<T>();
    // In a permuted pipeline SVPC may not have run as a stage; its
    // classification is shared preprocessing either way, and a system it
    // already decides is decided here with the same certainty.
    if (Svpc.St == SvpcResultT<T>::Status::Independent)
      return StageResult::independent();
    if (Svpc.St == SvpcResultT<T>::Status::Dependent)
      return StageResult::dependent(
          Svpc.Sample ? Ctx.witnessFromT<T>(*Svpc.Sample) : std::nullopt);
    if (Svpc.St == SvpcResultT<T>::Status::Overflow)
      return StageResult::overflow();
    AcyclicResultT<T> Acyc = runAcyclic(Ctx.systemT<T>().numVars(),
                                        Svpc.MultiVar, Svpc.Intervals);
    StageResult Out;
    switch (Acyc.St) {
    case AcyclicResultT<T>::Status::Independent:
      Out = StageResult::independent();
      break;
    case AcyclicResultT<T>::Status::Dependent:
      Out = StageResult::dependent(
          Acyc.Sample ? Ctx.witnessFromT<T>(*Acyc.Sample) : std::nullopt);
      break;
    case AcyclicResultT<T>::Status::NeedsMore:
      Out = StageResult::notApplicable();
      break;
    case AcyclicResultT<T>::Status::Overflow:
      Out = StageResult::overflow();
      break;
    }
    Ctx.setAcyclicOutcomeT<T>(std::move(Acyc));
    return Out;
  }
};

/// Step 4: the Simple Loop Residue test, preferably on the cyclic core
/// the Acyclic stage left behind, directly on the SVPC leftovers when
/// Acyclic has not run.
class LoopResidueStage final : public DependenceTest {
public:
  const char *name() const override { return "residue"; }
  const char *label() const override { return "Residue"; }
  const char *description() const override {
    return "loop residue: negative-cycle detection over difference "
           "constraints; exact via total unimodularity";
  }
  TestKind kind() const override { return TestKind::LoopResidue; }
  bool exact() const override { return true; }

  bool applicable(PipelineContext &Ctx) const override {
    if (!prepUsable(Ctx))
      return false;
    // Consult the widest acyclic outcome published: when the wide tier
    // ran, it subsumes the narrow one. An overflowed outcome means that
    // tier's simplified state is unusable; skip straight to
    // Fourier-Motzkin as the cascade always has.
    if (const AcyclicResultT<Int128> *W = Ctx.acyclicOutcomeT<Int128>())
      return W->St == AcyclicResultT<Int128>::Status::NeedsMore;
    if (const AcyclicResult *Acyc = Ctx.acyclicOutcome())
      return Acyc->St == AcyclicResult::Status::NeedsMore ||
             (Acyc->St == AcyclicResult::Status::Overflow &&
              Ctx.options().Widen);
    return true;
  }

  StageResult run(PipelineContext &Ctx) const override {
    return runWidened(*this, Ctx);
  }

  template <typename T> StageResult runT(PipelineContext &Ctx) const {
    switch (Ctx.prepT<T>()) {
    case PipelineContext::Prep::Overflow:
      return StageResult::overflow();
    case PipelineContext::Prep::Infeasible:
      return StageResult::independent();
    case PipelineContext::Prep::Ready:
      break;
    }

    const std::vector<LinearConstraintT<T>> *MultiVar;
    const VarIntervalsT<T> *Intervals;
    const AcyclicResultT<T> *Acyc = Ctx.acyclicOutcomeT<T>();
    if (Acyc && Acyc->St == AcyclicResultT<T>::Status::Overflow)
      return StageResult::overflow(); // this tier's core is unusable
    if (Acyc) {
      MultiVar = &Acyc->Remaining;
      Intervals = &Acyc->Intervals;
    } else {
      const SvpcResultT<T> &Svpc = Ctx.svpcPassT<T>();
      if (Svpc.St == SvpcResultT<T>::Status::Independent)
        return StageResult::independent();
      if (Svpc.St == SvpcResultT<T>::Status::Dependent)
        return StageResult::dependent(
            Svpc.Sample ? Ctx.witnessFromT<T>(*Svpc.Sample)
                        : std::nullopt);
      if (Svpc.St == SvpcResultT<T>::Status::Overflow)
        return StageResult::overflow();
      MultiVar = &Svpc.MultiVar;
      Intervals = &Svpc.Intervals;
    }

    ResidueResultT<T> Residue =
        runLoopResidue(Ctx.systemT<T>().numVars(), *MultiVar, *Intervals);
    switch (Residue.St) {
    case ResidueResultT<T>::Status::Independent:
      return StageResult::independent();
    case ResidueResultT<T>::Status::Dependent: {
      std::optional<std::vector<int64_t>> Witness;
      if (Residue.Sample) {
        std::vector<T> TSample = std::move(*Residue.Sample);
        // Replay the acyclic eliminations backwards to re-fill the
        // pinned/dropped variables (no-op when Acyclic did not run).
        if (!Acyc || completeSample(TSample, Acyc->Log, Acyc->Intervals))
          Witness = Ctx.witnessFromT<T>(TSample);
      }
      return StageResult::dependent(std::move(Witness));
    }
    case ResidueResultT<T>::Status::NotApplicable:
      return StageResult::notApplicable();
    case ResidueResultT<T>::Status::Overflow:
      return StageResult::overflow();
    }
    return StageResult::notApplicable();
  }
};

/// Step 5: the backup Fourier-Motzkin test on the full t-space system.
class FourierMotzkinStage final : public DependenceTest {
public:
  const char *name() const override { return "fm"; }
  const char *label() const override { return "F-M"; }
  const char *description() const override {
    return "Fourier-Motzkin backup: real projection with gcd tightening "
           "and branch & bound; inexact only on budget exhaustion";
  }
  TestKind kind() const override { return TestKind::FourierMotzkin; }
  bool exact() const override { return true; }

  bool applicable(PipelineContext &Ctx) const override {
    return prepUsable(Ctx);
  }

  StageResult run(PipelineContext &Ctx) const override {
    StageResult R = runWidened(*this, Ctx);
    // An overflow surviving the ladder is still this stage's call: FM
    // has always answered its own overflows with a decided (inexact)
    // Unknown rather than falling through, and --no-widen keeps that.
    if (R.St == StageResult::Status::Overflow) {
      StageResult Out = StageResult::unknown();
      Out.Widened = R.Widened;
      Out.FmWork = R.FmWork;
      return Out;
    }
    return R;
  }

  template <typename T> StageResult runT(PipelineContext &Ctx) const {
    switch (Ctx.prepT<T>()) {
    case PipelineContext::Prep::Overflow:
      return StageResult::overflow();
    case PipelineContext::Prep::Infeasible:
      return StageResult::independent();
    case PipelineContext::Prep::Ready:
      break;
    }
    FmResultT<T> Fm = runFourierMotzkin(Ctx.systemT<T>(), Ctx.options().Fm);
    // The solver's work measure: every combine and branch node, plus
    // one so even a trivially decided solve registers (the unit
    // DepStats::FmWork counts in).
    StageResult Out;
    switch (Fm.St) {
    case FmResultT<T>::Status::Independent:
      Out = StageResult::independent();
      break;
    case FmResultT<T>::Status::Dependent:
      Out = StageResult::dependent(
          Fm.Sample ? Ctx.witnessFromT<T>(*Fm.Sample) : std::nullopt);
      break;
    case FmResultT<T>::Status::Unknown:
      // Only overflow-caused Unknowns are worth a wide retry; budget
      // exhaustion would exhaust the wide tier just the same.
      Out = Fm.Overflowed ? StageResult::overflow()
                          : StageResult::unknown();
      break;
    }
    Out.FmWork = Fm.Combines + uint64_t(Fm.BranchNodes) + 1;
    return Out;
  }
};

/// Decodes ExtraLe0 forms produced by the direction-vector refinement
/// back into a direction vector, when every form matches one of the
/// patterns appendDirConstraints emits (Less: +xA -xB, const 1;
/// Greater: -xA +xB, const 1; Equal: the two complementary const-0
/// halves). Returns nullopt for any other constraint shape — the
/// Banerjee baseline has no notion of general linear side constraints.
std::optional<DirVector>
decodeDirConstraints(const DependenceProblem &P,
                     const std::vector<XAffine> &ExtraLe0) {
  DirVector Psi(P.NumCommon, Dir::Any);
  // Per common loop: which Equal halves were seen (A-B and B-A).
  std::vector<uint8_t> EqualHalves(P.NumCommon, 0);
  for (const XAffine &Form : ExtraLe0) {
    std::optional<unsigned> PosVar, NegVar;
    for (unsigned J = 0; J < Form.Coeffs.size(); ++J) {
      if (Form.Coeffs[J] == 0)
        continue;
      if (Form.Coeffs[J] == 1 && !PosVar)
        PosVar = J;
      else if (Form.Coeffs[J] == -1 && !NegVar)
        NegVar = J;
      else
        return std::nullopt;
    }
    if (!PosVar || !NegVar)
      return std::nullopt;
    // Identify the common loop the pair (PosVar, NegVar) belongs to.
    unsigned K;
    bool AFirst;
    if (*PosVar < P.NumCommon && *NegVar == P.NumLoopsA + *PosVar) {
      K = *PosVar;
      AFirst = true;
    } else if (*NegVar < P.NumCommon &&
               *PosVar == P.NumLoopsA + *NegVar) {
      K = *NegVar;
      AFirst = false;
    } else {
      return std::nullopt;
    }
    Dir Seen;
    if (Form.Const == 1)
      Seen = AFirst ? Dir::Less : Dir::Greater;
    else if (Form.Const == 0) {
      EqualHalves[K] |= AFirst ? 1 : 2;
      if (EqualHalves[K] == 3)
        Seen = Dir::Equal;
      else
        continue; // waiting for the complementary half
    } else {
      return std::nullopt;
    }
    if (Psi[K] != Dir::Any && Psi[K] != Seen)
      return std::nullopt; // contradictory redundant constraints
    Psi[K] = Seen;
  }
  // A lone Equal half is a one-sided <= we cannot express.
  for (unsigned K = 0; K < P.NumCommon; ++K)
    if (EqualHalves[K] != 0 && Psi[K] != Dir::Equal)
      return std::nullopt;
  return Psi;
}

/// The inexact section 7 baseline behind the same interface: simple GCD
/// plus the Banerjee bounds test (Wolfe's rectangular per-direction
/// variant when direction constraints are imposed). Independent answers
/// are sound; anything else is "assumed dependent" (Unknown).
class BanerjeeStage final : public DependenceTest {
public:
  const char *name() const override { return "banerjee"; }
  const char *label() const override { return "Banerjee"; }
  const char *description() const override {
    return "inexact baseline: simple GCD + Banerjee bounds test "
           "(assumes dependence when real extremes straddle zero)";
  }
  TestKind kind() const override { return TestKind::Banerjee; }
  bool exact() const override { return false; }

  bool applicable(PipelineContext &Ctx) const override {
    return decodeDirConstraints(Ctx.problem(), Ctx.extraLe0())
        .has_value();
  }

  StageResult run(PipelineContext &Ctx) const override {
    std::optional<DirVector> Psi =
        decodeDirConstraints(Ctx.problem(), Ctx.extraLe0());
    assert(Psi && "run() without applicable()");
    return banerjeeDirected(Ctx.problem(), *Psi) ==
                   BaselineAnswer::Independent
               ? StageResult::independent()
               : StageResult::unknown();
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// The registry
//===----------------------------------------------------------------------===//

const std::vector<const DependenceTest *> &edda::stageRegistry() {
  static const std::vector<const DependenceTest *> Registry = [] {
    static ArrayConstantStage Const;
    static GcdStage Gcd;
    static SvpcStage Svpc;
    static AcyclicStage Acyclic;
    static LoopResidueStage Residue;
    static FourierMotzkinStage Fm;
    static BanerjeeStage Banerjee;
    std::vector<DependenceTest *> Stages = {
        &Const, &Gcd, &Svpc, &Acyclic, &Residue, &Fm, &Banerjee};
    std::vector<const DependenceTest *> Out;
    Out.reserve(Stages.size());
    for (unsigned I = 0; I < Stages.size(); ++I) {
      StageRegistryBuilder::setId(*Stages[I], I);
      Out.push_back(Stages[I]);
    }
    return Out;
  }();
  return Registry;
}

const DependenceTest *edda::findStage(std::string_view Name) {
  for (const DependenceTest *Stage : stageRegistry())
    if (Name == Stage->name())
      return Stage;
  return nullptr;
}

const DependenceTest *edda::stageForKind(TestKind Kind) {
  for (const DependenceTest *Stage : stageRegistry())
    if (Stage->kind() == Kind)
      return Stage;
  return nullptr;
}

/// Printable name for an overflow-provenance stage id (see
/// DepStats::StageOverflow).
const char *edda::stageName(unsigned StageId) {
  const std::vector<const DependenceTest *> &Registry = stageRegistry();
  return StageId < Registry.size() ? Registry[StageId]->name()
                                   : "unknown";
}

//===----------------------------------------------------------------------===//
// TestPipeline
//===----------------------------------------------------------------------===//

const TestPipeline &TestPipeline::defaultPipeline() {
  static const TestPipeline Default = [] {
    TestPipeline P;
    for (const DependenceTest *Stage : stageRegistry())
      if (Stage->exact())
        P.Stages.push_back(Stage);
    return P;
  }();
  return Default;
}

std::optional<TestPipeline> TestPipeline::parse(std::string_view Spec,
                                                std::string *Error) {
  auto Fail = [&](const std::string &Message) -> std::optional<TestPipeline> {
    if (Error) {
      *Error = Message + "; valid stages:";
      for (const DependenceTest *Stage : stageRegistry())
        *Error += std::string(" ") + Stage->name();
      *Error += ", or 'default'";
    }
    return std::nullopt;
  };

  if (Spec == "default")
    return defaultPipeline();

  TestPipeline P;
  size_t Pos = 0;
  while (Pos <= Spec.size()) {
    size_t Comma = Spec.find(',', Pos);
    std::string_view Token = Spec.substr(
        Pos, Comma == std::string_view::npos ? Comma : Comma - Pos);
    if (Token.empty())
      return Fail("empty stage name in pipeline spec '" +
                  std::string(Spec) + "'");
    const DependenceTest *Stage = findStage(Token);
    if (!Stage)
      return Fail("unknown stage '" + std::string(Token) +
                  "' in pipeline spec '" + std::string(Spec) + "'");
    for (const DependenceTest *Prev : P.Stages)
      if (Prev == Stage)
        return Fail("duplicate stage '" + std::string(Token) +
                    "' in pipeline spec '" + std::string(Spec) + "'");
    P.Stages.push_back(Stage);
    if (Comma == std::string_view::npos)
      break;
    Pos = Comma + 1;
  }
  if (P.Stages.empty())
    return Fail("empty pipeline spec");
  return P;
}

std::string TestPipeline::spec() const {
  std::string Out;
  for (const DependenceTest *Stage : Stages) {
    if (!Out.empty())
      Out += ',';
    Out += Stage->name();
  }
  return Out;
}

std::shared_ptr<const TestPipeline>
edda::makePipeline(std::string_view Spec, std::string *Error) {
  std::optional<TestPipeline> P = TestPipeline::parse(Spec, Error);
  if (!P)
    return nullptr;
  return std::make_shared<const TestPipeline>(std::move(*P));
}

CascadeResult TestPipeline::run(const DependenceProblem &Problem,
                                const std::vector<XAffine> &ExtraLe0,
                                const CascadeOptions &Opts,
                                DepStats *Stats,
                                PipelineTrace *Trace) const {
  assert(Problem.wellFormed() && "malformed problem");
  if (Stats)
    ++Stats->Queries;

  PipelineContext Ctx(Problem, ExtraLe0, Opts);
  // First stage whose own arithmetic gave up, for Unanalyzable
  // provenance (one record per query even if several stages overflow).
  std::optional<unsigned> OverflowStage;

  auto Decide = [&](const DependenceTest *Stage, DepAnswer Answer,
                    std::optional<std::vector<int64_t>> Witness,
                    bool Widened) {
    if (Stats) {
      Stats->recordDecision(Stage->kind(),
                            Answer == DepAnswer::Independent);
      Stats->recordStageDecision(Stage->id(),
                                 Answer == DepAnswer::Independent);
      if (Widened) {
        ++Stats->WidenedQueries;
        // A widening forced by shared-preprocessing overflow is the GCD
        // stage's, whichever stage's retry then decided — the same
        // order-independence rule as overflow provenance.
        unsigned WidenId = Stage->id();
        if (Ctx.narrowPrepOverflowed())
          if (const DependenceTest *Gcd = stageForKind(TestKind::GcdTest))
            WidenId = Gcd->id();
        Stats->recordStageWiden(WidenId);
      }
    }
    CascadeResult Result;
    Result.Answer = Answer;
    Result.DecidedBy = Stage->kind();
    Result.Exact = Answer != DepAnswer::Unknown;
    Result.Witness = std::move(Witness);
    Result.Widened = Widened;
    return Result;
  };

  for (const DependenceTest *Stage : Stages) {
    std::chrono::steady_clock::time_point Start;
    if (Trace)
      Start = std::chrono::steady_clock::now();

    bool Applicable = Stage->applicable(Ctx);
    StageResult R = Applicable ? Stage->run(Ctx)
                               : StageResult::notApplicable();

    if (Trace) {
      StageTrace &T = Trace->Stages.emplace_back();
      T.Stage = Stage;
      T.Applicable = Applicable;
      T.St = R.St;
      // Mirrors CascadeResult::Exact: a decided Independent/Dependent is
      // certain (even from the Banerjee stage, whose Independent answers
      // are sound); only Unknown is inexact.
      T.Exact = R.St == StageResult::Status::Independent ||
                R.St == StageResult::Status::Dependent;
      T.Widened = R.Widened;
      T.Witness = R.Witness;
      T.Nanos = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - Start)
              .count());
    }

    if (Stats)
      Stats->FmWork += R.FmWork;

    switch (R.St) {
    case StageResult::Status::Independent:
      return Decide(Stage, DepAnswer::Independent, std::nullopt,
                    R.Widened);
    case StageResult::Status::Dependent:
      return Decide(Stage, DepAnswer::Dependent, std::move(R.Witness),
                    R.Widened);
    case StageResult::Status::Unknown:
      return Decide(Stage, DepAnswer::Unknown, std::nullopt, R.Widened);
    case StageResult::Status::Overflow:
      if (!OverflowStage)
        OverflowStage = Stage->id();
      continue;
    case StageResult::Status::NotApplicable:
      continue;
    }
  }

  // No stage decided: conservatively unknown. Record which stage's
  // arithmetic gave up — a shared-preprocessing overflow is the GCD
  // stage's even when another stage's lazy access tripped it.
  if (!OverflowStage)
    OverflowStage = Ctx.prepOverflowStage();
  if (Stats) {
    Stats->recordDecision(TestKind::Unanalyzable, false);
    if (OverflowStage)
      Stats->recordStageOverflow(*OverflowStage);
  }
  CascadeResult Result;
  Result.Answer = DepAnswer::Unknown;
  Result.DecidedBy = TestKind::Unanalyzable;
  Result.Exact = false;
  return Result;
}

//===----------------------------------------------------------------------===//
// Trace rendering
//===----------------------------------------------------------------------===//

static const char *statusStr(StageResult::Status St) {
  switch (St) {
  case StageResult::Status::Independent:
    return "independent";
  case StageResult::Status::Dependent:
    return "dependent";
  case StageResult::Status::Unknown:
    return "unknown";
  case StageResult::Status::NotApplicable:
    return "not-applicable";
  case StageResult::Status::Overflow:
    return "overflow";
  }
  return "?";
}

std::string PipelineTrace::str(unsigned Indent) const {
  std::string Pad(Indent, ' ');
  std::string Out;
  for (const StageTrace &T : Stages) {
    Out += Pad + T.Stage->name() + std::string(": ");
    if (!T.Applicable) {
      Out += "skipped (not applicable)";
    } else {
      Out += statusStr(T.St);
      if (T.St == StageResult::Status::Independent ||
          T.St == StageResult::Status::Dependent)
        Out += T.Exact ? " (exact)" : " (inexact)";
      else if (T.St == StageResult::Status::Unknown)
        Out += " (inexact)";
      if (T.Widened)
        Out += " (widened to 128-bit)";
      if (T.Witness) {
        Out += ", witness [";
        for (unsigned J = 0; J < T.Witness->size(); ++J) {
          if (J)
            Out += ", ";
          Out += std::to_string((*T.Witness)[J]);
        }
        Out += "]";
      }
    }
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), ", %llu ns",
                  static_cast<unsigned long long>(T.Nanos));
    Out += Buf;
    Out += "\n";
  }
  return Out;
}
