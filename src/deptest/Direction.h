//===- deptest/Direction.h - Direction and distance vectors ----*- C++ -*-===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Direction and distance vector computation (paper section 6). The
/// hierarchical scheme of Burke and Cytron starts from (*,...,*) and
/// refines a '*' into '<', '=' and '>' only under dependent parents; each
/// refinement adds linear constraints relating a common loop's two
/// iteration variables and re-runs the cascade. Pruning implemented:
///
///   * unused-variable elimination: loops that appear in no subscript or
///     relevant bound carry '*' without testing;
///   * distance-vector pruning: when the GCD solution pins i'_k - i_k to
///     a constant, the direction is forced and the distance recorded;
///   * the implicit branch & bound: an Unknown root with all-independent
///     leaves is exact independence;
///   * optionally, Burke and Cytron's per-dimension scheme for separable
///     problems.
///
//===----------------------------------------------------------------------===//

#ifndef EDDA_DEPTEST_DIRECTION_H
#define EDDA_DEPTEST_DIRECTION_H

#include "deptest/Cascade.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace edda {

/// One component of a direction vector, relating a common loop's source
/// iteration i to its sink iteration i'.
enum class Dir : uint8_t {
  Less,    ///< i < i' (forward loop-carried).
  Equal,   ///< i == i' (loop-independent at this level).
  Greater, ///< i > i' (backward; the reversed pair carries it).
  Any,     ///< Unconstrained ('*').
};

/// A direction vector over the common loops, outermost first.
using DirVector = std::vector<Dir>;

/// "(<, =, *)" rendering.
std::string dirVectorStr(const DirVector &V);
char dirChar(Dir D);

/// Knobs for direction vector computation.
struct DirectionOptions {
  CascadeOptions Cascade;
  /// Prepend '*' for unused loops instead of testing them (on for the
  /// paper's Table 5, off for Table 4).
  bool EliminateUnusedVars = true;
  /// Skip directions contradicting a GCD-constant distance (on for
  /// Table 5, off for Table 4).
  bool DistanceVectorPruning = true;
  /// Burke and Cytron's per-dimension computation for separable
  /// problems (extension; see DESIGN.md ablations).
  bool SeparableDimensions = false;
  /// Testing hook (edda-fuzz --inject-bug=dir-prune-sign): flips the
  /// sign of every distance the GCD pruning pins, so the forced
  /// direction is mirrored. Never set outside the fuzzer's
  /// injected-bug self-check.
  bool InjectMisSignedPruning = false;
  /// Cumulative Fourier-Motzkin work budget (in combine operations;
  /// see DepStats::FmWork) for the refinement tree of one computation.
  /// Coupled equations under triangular bounds can drive nearly every
  /// constrained query into branch & bound, and at the default FM
  /// budget a single 3-deep hierarchy then costs tens of seconds while
  /// the root cascade answers in milliseconds. Once the budget is
  /// spent, the unexplored remainder of the tree is summarized by one
  /// conservative '*'-filled vector per open level and the result is
  /// marked inexact — coverage is preserved, minimality is not
  /// claimed. The root query and the separable per-dimension path
  /// (two-variable subproblems) are not limited, but the root's work
  /// does count against the budget. 0 disables the cap.
  uint64_t MaxRefineFmWork = 1u << 20;
};

/// Result of direction/distance vector computation.
struct DirectionResult {
  /// Answer of the root (*,...,*) test, upgraded to Independent when the
  /// implicit branch & bound refutes an Unknown root.
  DepAnswer RootAnswer = DepAnswer::Unknown;
  /// The test that decided the root query (Svpc as a stand-in when the
  /// separable per-dimension path skipped the root test).
  TestKind RootDecidedBy = TestKind::Svpc;
  bool Exact = true;
  /// True when any cascade query in the hierarchy (root, refinement, or
  /// separable per-dimension test) climbed the 128-bit widening ladder.
  bool Widened = false;
  /// The root query's own widened bit — what a plain testDependence of
  /// the same problem would report. Stays false on the separable path,
  /// which never runs a root query.
  bool RootWidened = false;
  /// All direction vectors under which the references depend. Components
  /// may be Any for unused loops.
  std::vector<DirVector> Vectors;
  /// Per common loop: the constant dependence distance i'_k - i_k when
  /// the GCD solution determines one.
  std::vector<std::optional<int64_t>> Distances;
  /// Cascade statistics for every test run during the computation — the
  /// per-kind counts of the paper's Tables 4, 5 and 7.
  DepStats TestStats;
  /// Number of cascade invocations (root + refinements).
  uint64_t TestsRun = 0;
};

/// Computes the dependent direction vectors of \p Problem.
DirectionResult computeDirectionVectors(const DependenceProblem &Problem,
                                        const DirectionOptions &Opts = {});

} // namespace edda

#endif // EDDA_DEPTEST_DIRECTION_H
