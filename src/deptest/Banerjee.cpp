//===- deptest/Banerjee.cpp - Inexact baseline tests ----------------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "deptest/Banerjee.h"

#include "deptest/ExtendedGcd.h"
#include "support/IntMath.h"

#include <algorithm>
#include <functional>

using namespace edda;

namespace {

/// A possibly half-open integer interval; a missing endpoint is
/// unbounded.
struct Interval {
  std::optional<int64_t> Lo;
  std::optional<int64_t> Hi;
};

/// Relaxes every variable of \p P to a constant interval: loop bounds
/// that reference other variables are widened transitively to their
/// extreme values (the trapezoid-to-rectangle relaxation traditional
/// tests perform); symbolics are unbounded.
std::vector<Interval> constantRanges(const DependenceProblem &P) {
  std::vector<Interval> Ranges(P.numX());
  // Loop bounds only reference outer loops of the same reference and
  // symbolics; one outer-to-inner pass per block therefore converges.
  // Iterate twice to be safe with unusual orderings.
  for (int Pass = 0; Pass < 2; ++Pass) {
    for (unsigned L = 0; L < P.numLoopVars(); ++L) {
      if (P.Lo[L]) {
        CheckedInt Lo(P.Lo[L]->Const);
        bool Known = true;
        for (unsigned J = 0; J < P.numX() && Known; ++J) {
          int64_t A = P.Lo[L]->Coeffs[J];
          if (A == 0)
            continue;
          const std::optional<int64_t> &End =
              A > 0 ? Ranges[J].Lo : Ranges[J].Hi;
          if (!End)
            Known = false;
          else
            Lo += CheckedInt(A) * *End;
        }
        if (Known && Lo.valid())
          Ranges[L].Lo = Lo.get();
      }
      if (P.Hi[L]) {
        CheckedInt Hi(P.Hi[L]->Const);
        bool Known = true;
        for (unsigned J = 0; J < P.numX() && Known; ++J) {
          int64_t A = P.Hi[L]->Coeffs[J];
          if (A == 0)
            continue;
          const std::optional<int64_t> &End =
              A > 0 ? Ranges[J].Hi : Ranges[J].Lo;
          if (!End)
            Known = false;
          else
            Hi += CheckedInt(A) * *End;
        }
        if (Known && Hi.valid())
          Ranges[L].Hi = Hi.get();
      }
    }
  }
  return Ranges;
}

/// Extreme values of one term a*x over an interval; unbounded sides are
/// reported through the Known flags.
struct TermExtremes {
  bool MinKnown = false;
  bool MaxKnown = false;
  int64_t Min = 0;
  int64_t Max = 0;
};

TermExtremes termExtremes(int64_t A, const Interval &R) {
  TermExtremes E;
  if (A == 0) {
    E.MinKnown = E.MaxKnown = true;
    return E;
  }
  const std::optional<int64_t> &MinEnd = A > 0 ? R.Lo : R.Hi;
  const std::optional<int64_t> &MaxEnd = A > 0 ? R.Hi : R.Lo;
  if (MinEnd) {
    std::optional<int64_t> V = checkedMul(A, *MinEnd);
    if (V) {
      E.MinKnown = true;
      E.Min = *V;
    }
  }
  if (MaxEnd) {
    std::optional<int64_t> V = checkedMul(A, *MaxEnd);
    if (V) {
      E.MaxKnown = true;
      E.Max = *V;
    }
  }
  return E;
}

/// Candidate vertices of {box} cap {direction halfplane} for one common
/// loop pair, with F(i, i') = p*i + q*i' evaluated at each. Returns false
/// in \p RegionNonEmpty when no candidate is feasible.
TermExtremes pairExtremes(int64_t P, int64_t Q, const Interval &RA,
                          const Interval &RB, Dir D,
                          bool &RegionNonEmpty) {
  TermExtremes E;
  RegionNonEmpty = true;
  if (P == 0 && Q == 0 && D == Dir::Any) {
    E.MinKnown = E.MaxKnown = true;
    return E;
  }
  // The vertex method needs a finite box.
  if (!RA.Lo || !RA.Hi || !RB.Lo || !RB.Hi)
    return E; // both sides unknown; region assumed nonempty
  int64_t L1 = *RA.Lo, U1 = *RA.Hi, L2 = *RB.Lo, U2 = *RB.Hi;
  if (L1 > U1 || L2 > U2) {
    RegionNonEmpty = false;
    return E;
  }

  std::vector<std::pair<int64_t, int64_t>> Candidates;
  auto Feasible = [&](int64_t I, int64_t J) {
    if (I < L1 || I > U1 || J < L2 || J > U2)
      return false;
    switch (D) {
    case Dir::Less:
      return I < J;
    case Dir::Equal:
      return I == J;
    case Dir::Greater:
      return I > J;
    case Dir::Any:
      return true;
    }
    return false;
  };
  // Box corners.
  for (int64_t I : {L1, U1})
    for (int64_t J : {L2, U2})
      Candidates.push_back({I, J});
  // Cut-line crossings (integral because the cut has slope one).
  if (D == Dir::Less) {
    Candidates.push_back({L1, L1 + 1});
    Candidates.push_back({U1, U1 + 1});
    Candidates.push_back({L2 - 1, L2});
    Candidates.push_back({U2 - 1, U2});
  } else if (D == Dir::Greater) {
    Candidates.push_back({L1, L1 - 1});
    Candidates.push_back({U1, U1 - 1});
    Candidates.push_back({L2 + 1, L2});
    Candidates.push_back({U2 + 1, U2});
  } else if (D == Dir::Equal) {
    int64_t Lo = std::max(L1, L2), Hi = std::min(U1, U2);
    Candidates.push_back({Lo, Lo});
    Candidates.push_back({Hi, Hi});
  }

  bool Any = false;
  for (const auto &[I, J] : Candidates) {
    if (!Feasible(I, J))
      continue;
    CheckedInt V = CheckedInt(P) * I + CheckedInt(Q) * J;
    if (!V.valid())
      return TermExtremes{}; // give up: unbounded both ways
    if (!Any) {
      E.Min = E.Max = V.get();
      Any = true;
    } else {
      E.Min = std::min(E.Min, V.get());
      E.Max = std::max(E.Max, V.get());
    }
  }
  if (!Any) {
    RegionNonEmpty = false;
    return E;
  }
  E.MinKnown = E.MaxKnown = true;
  return E;
}

/// Banerjee bounds check of one equation under a direction vector
/// (all-Any for the plain test). Returns true when the equation excludes
/// zero (independence proved) or the direction region is empty.
bool equationExcludesZero(const DependenceProblem &P, const XAffine &Eq,
                          const std::vector<Interval> &Ranges,
                          const DirVector &Psi) {
  CheckedInt Min(Eq.Const), Max(Eq.Const);
  bool MinKnown = true, MaxKnown = true;

  std::vector<bool> Handled(P.numX(), false);
  for (unsigned K = 0; K < P.NumCommon; ++K) {
    unsigned A = P.xOfCommonA(K);
    unsigned B = P.xOfCommonB(K);
    Dir D = K < Psi.size() ? Psi[K] : Dir::Any;
    bool RegionNonEmpty = true;
    TermExtremes E = pairExtremes(Eq.Coeffs[A], Eq.Coeffs[B], Ranges[A],
                                  Ranges[B], D, RegionNonEmpty);
    if (!RegionNonEmpty)
      return true; // no iterations satisfy the direction at all
    Handled[A] = Handled[B] = true;
    if (Eq.Coeffs[A] == 0 && Eq.Coeffs[B] == 0)
      continue;
    MinKnown = MinKnown && E.MinKnown;
    MaxKnown = MaxKnown && E.MaxKnown;
    if (E.MinKnown)
      Min += E.Min;
    if (E.MaxKnown)
      Max += E.Max;
  }
  for (unsigned J = 0; J < P.numX(); ++J) {
    if (Handled[J] || Eq.Coeffs[J] == 0)
      continue;
    TermExtremes E = termExtremes(Eq.Coeffs[J], Ranges[J]);
    MinKnown = MinKnown && E.MinKnown;
    MaxKnown = MaxKnown && E.MaxKnown;
    if (E.MinKnown)
      Min += E.Min;
    if (E.MaxKnown)
      Max += E.Max;
  }
  if (!Min.valid() || !Max.valid())
    return false;
  if (MinKnown && Min.get() > 0)
    return true;
  if (MaxKnown && Max.get() < 0)
    return true;
  return false;
}

} // namespace

BaselineAnswer edda::baselineSimpleGcd(const DependenceProblem &Problem) {
  return simpleGcdTest(Problem) ? BaselineAnswer::AssumedDependent
                                : BaselineAnswer::Independent;
}

BaselineAnswer edda::banerjeeDirected(const DependenceProblem &Problem,
                                      const DirVector &Psi) {
  if (!simpleGcdTest(Problem))
    return BaselineAnswer::Independent;
  std::vector<Interval> Ranges = constantRanges(Problem);
  for (const XAffine &Eq : Problem.Equations)
    if (equationExcludesZero(Problem, Eq, Ranges, Psi))
      return BaselineAnswer::Independent;
  return BaselineAnswer::AssumedDependent;
}

BaselineAnswer
edda::baselineGcdBanerjee(const DependenceProblem &Problem) {
  return banerjeeDirected(Problem,
                          DirVector(Problem.NumCommon, Dir::Any));
}

DirectionResult
edda::baselineDirectionVectors(const DependenceProblem &Problem) {
  DirectionResult Result;
  Result.Exact = false;
  Result.Distances.assign(Problem.NumCommon, std::nullopt);

  ++Result.TestsRun;
  if (baselineGcdBanerjee(Problem) == BaselineAnswer::Independent) {
    Result.RootAnswer = DepAnswer::Independent;
    return Result;
  }
  Result.RootAnswer = DepAnswer::Unknown; // "assumed dependent"

  // Unused-variable elimination, as in the configuration the paper
  // measured: unused loops carry '*' and are not enumerated.
  std::vector<bool> Unused = Problem.unusedCommonLoops();
  std::vector<Interval> Ranges = constantRanges(Problem);

  // Hierarchical enumeration with the inexact per-direction test.
  DirVector Psi(Problem.NumCommon, Dir::Any);
  std::vector<unsigned> Active;
  for (unsigned K = 0; K < Problem.NumCommon; ++K)
    if (!Unused[K])
      Active.push_back(K);

  auto Refuted = [&](const DirVector &V) {
    for (const XAffine &Eq : Problem.Equations)
      if (equationExcludesZero(Problem, Eq, Ranges, V))
        return true;
    return false;
  };

  std::function<void(unsigned)> Expand = [&](unsigned Idx) {
    if (Idx == Active.size()) {
      Result.Vectors.push_back(Psi);
      return;
    }
    unsigned K = Active[Idx];
    for (Dir D : {Dir::Less, Dir::Equal, Dir::Greater}) {
      Psi[K] = D;
      ++Result.TestsRun;
      if (!Refuted(Psi))
        Expand(Idx + 1);
      Psi[K] = Dir::Any;
    }
  };
  Expand(0);
  return Result;
}
