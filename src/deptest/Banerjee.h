//===- deptest/Banerjee.h - Inexact baseline tests -------------*- C++ -*-===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The inexact comparison baselines of paper section 7: the simple GCD
/// test (Banerjee algorithm 5.4.1) combined with the trapezoidal
/// Banerjee bounds test (algorithm 4.3.1), and for direction vectors
/// Wolfe's extension of Banerjee's rectangular test (2.5.2 in Wolfe's
/// book). These tests prove independence when the real-valued extreme
/// values of the subscript difference exclude zero; failing that they
/// assume dependence, which is where they lose the 16% of independent
/// pairs (and report 22% spurious direction vectors) that the exact
/// cascade recovers.
///
//===----------------------------------------------------------------------===//

#ifndef EDDA_DEPTEST_BANERJEE_H
#define EDDA_DEPTEST_BANERJEE_H

#include "deptest/Direction.h"
#include "deptest/Problem.h"

namespace edda {

/// Answer of an inexact baseline: Independent is definitive, Dependent
/// means "could not prove independent".
enum class BaselineAnswer {
  Independent,
  AssumedDependent,
};

/// The simple GCD test alone (per-dimension divisibility).
BaselineAnswer baselineSimpleGcd(const DependenceProblem &Problem);

/// Simple GCD followed by the Banerjee bounds test under direction
/// vector \p Psi (all-Any components are unconstrained; this is the
/// per-direction test the "banerjee" pipeline stage runs when direction
/// constraints are imposed). Independence answers are sound.
BaselineAnswer banerjeeDirected(const DependenceProblem &Problem,
                                const DirVector &Psi);

/// Simple GCD followed by the Banerjee bounds test. The bounds test
/// computes, per equation, real-valued minimum and maximum of the
/// subscript difference over the (trapezoid-relaxed) loop ranges and
/// reports independence when 0 lies outside. Handles affine (trapezoidal)
/// bounds by relaxing each variable to constant extreme bounds computed
/// transitively; unbounded variables make the test inapplicable for that
/// equation (assumed dependent), mirroring traditional practice.
BaselineAnswer baselineGcdBanerjee(const DependenceProblem &Problem);

/// Direction-vector baseline: simple GCD plus Wolfe's rectangular
/// Banerjee test per direction vector, with unused variables eliminated
/// (the configuration the paper measured). Returns every direction
/// vector not refuted.
DirectionResult
baselineDirectionVectors(const DependenceProblem &Problem);

} // namespace edda

#endif // EDDA_DEPTEST_BANERJEE_H
