//===- deptest/Memo.h - Memoization of dependence tests --------*- C++ -*-===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Memoization of dependence tests (paper section 5). Real programs ask
/// the same small set of questions over and over, so results are cached
/// in two hash tables: one keyed without loop bounds (the extended GCD
/// test ignores bounds) and one keyed with them (full answers and
/// direction vectors). The paper's "simple" scheme keys the problem
/// verbatim; the "improved" scheme first removes unused loop variables,
/// merging problems that differ only in irrelevant surrounding loops.
/// Extensions the paper sketches are implemented behind options:
/// symmetric-pair canonicalization and cross-compilation persistence.
///
//===----------------------------------------------------------------------===//

#ifndef EDDA_DEPTEST_MEMO_H
#define EDDA_DEPTEST_MEMO_H

#include "deptest/Cascade.h"
#include "deptest/Direction.h"
#include "deptest/Problem.h"

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace edda {

/// Which hash function drives the tables (the bench compares collision
/// behaviour; results are identical).
enum class MemoHashKind {
  Mixing,       ///< splitmix-based mixer (default).
  PaperLiteral, ///< h(x) = size(x) + sum 2^i x_i, as published.
};

/// Memoization scheme configuration.
struct MemoOptions {
  /// Remove unused loop variables before keying (the paper's improved
  /// scheme).
  bool ImprovedKey = true;
  /// Canonicalize (A,B) and (B,A) to one key (extension sketched in
  /// section 5: "comparing a[i] to a[i-1] is the same as comparing
  /// a[i-1] to a[i]").
  bool SymmetricKey = false;
  /// Sort the subscript equations before keying, merging problems that
  /// differ only in array-dimension order (the section 5 note that
  /// "a[i][j] versus a[i+1][j+1] is equivalent to a[j][i] versus
  /// a[j+1][i+1]"). Sound: the equations are a conjunction.
  bool CanonicalizeEquations = false;
  MemoHashKind Hash = MemoHashKind::Mixing;
};

/// The two-table dependence cache.
class DependenceCache {
public:
  explicit DependenceCache(MemoOptions Opts = {}) : Opts(Opts) {}

  const MemoOptions &options() const { return Opts; }

  /// Full-answer table (bounds included in the key).
  std::optional<CascadeResult> lookupFull(const DependenceProblem &P);
  void insertFull(const DependenceProblem &P, const CascadeResult &R);

  /// Direction-vector table (bounds included in the key).
  std::optional<DirectionResult>
  lookupDirections(const DependenceProblem &P);
  void insertDirections(const DependenceProblem &P,
                        const DirectionResult &R);

  /// GCD-solvability table (bounds excluded from the key).
  std::optional<bool> lookupGcdSolvable(const DependenceProblem &P);
  void insertGcdSolvable(const DependenceProblem &P, bool Solvable);

  /// Accounting for the Table 2 reproduction.
  uint64_t fullQueries() const { return FullQueries; }
  uint64_t fullHits() const { return FullHits; }
  uint64_t uniqueFull() const { return Full.size(); }
  uint64_t uniqueDirections() const { return Directions.size(); }
  uint64_t gcdQueries() const { return GcdQueries; }
  uint64_t gcdHits() const { return GcdHits; }
  uint64_t uniqueNoBounds() const { return Gcd.size(); }

  /// The key a problem maps to (exposed so benches can study hash
  /// collision behaviour directly).
  std::vector<int64_t> keyFor(const DependenceProblem &P,
                              bool IncludeBounds, bool &Swapped) const;

  /// Persistence across compilations (extension, paper section 5):
  /// writes/reads the full-answer and direction tables (witnesses are
  /// not persisted). Returns false on I/O or format errors.
  bool saveToFile(const std::string &Path) const;
  bool loadFromFile(const std::string &Path);

  void clear();

private:
  struct KeyHash {
    MemoHashKind Kind;
    size_t operator()(const std::vector<int64_t> &Key) const;
  };
  using Key = std::vector<int64_t>;

  MemoOptions Opts;
  std::unordered_map<Key, CascadeResult, KeyHash> Full{
      0, KeyHash{MemoHashKind::Mixing}};
  std::unordered_map<Key, DirectionResult, KeyHash> Directions{
      0, KeyHash{MemoHashKind::Mixing}};
  std::unordered_map<Key, bool, KeyHash> Gcd{
      0, KeyHash{MemoHashKind::Mixing}};
  bool TablesInitialized = false;
  uint64_t FullQueries = 0;
  uint64_t FullHits = 0;
  uint64_t GcdQueries = 0;
  uint64_t GcdHits = 0;

  void ensureTables();
};

/// Reverses a direction result between (A,B) and (B,A): '<' and '>'
/// exchange and distances negate. Used by the symmetric key scheme.
DirectionResult reverseDirections(const DirectionResult &R);

/// Remaps a witness between (A,B) and (B,A) x layouts.
std::vector<int64_t> swapWitness(const std::vector<int64_t> &X,
                                 unsigned NumLoopsA, unsigned NumLoopsB);

} // namespace edda

#endif // EDDA_DEPTEST_MEMO_H
