//===- deptest/Memo.h - Memoization of dependence tests --------*- C++ -*-===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Memoization of dependence tests (paper section 5). Real programs ask
/// the same small set of questions over and over, so results are cached
/// in two hash tables: one keyed without loop bounds (the extended GCD
/// test ignores bounds) and one keyed with them (full answers and
/// direction vectors). The paper's "simple" scheme keys the problem
/// verbatim; the "improved" scheme first removes unused loop variables,
/// merging problems that differ only in irrelevant surrounding loops.
/// Extensions the paper sketches are implemented behind options:
/// symmetric-pair canonicalization and cross-compilation persistence.
///
/// The cache is safe for concurrent lookup/insert: the tables are split
/// into independently-locked shards selected by the memo hash of the
/// key, so under the parallel analyzer the hot path takes one
/// uncontended lock. Shard count 1 degenerates to the original
/// single-table behaviour. Sharding never changes which key maps to
/// which entry — only which mutex guards it — so results are identical
/// at every shard count.
///
//===----------------------------------------------------------------------===//

#ifndef EDDA_DEPTEST_MEMO_H
#define EDDA_DEPTEST_MEMO_H

#include "deptest/Cascade.h"
#include "deptest/Direction.h"
#include "deptest/Problem.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace edda {

/// Which hash function drives the tables (the bench compares collision
/// behaviour; results are identical).
enum class MemoHashKind {
  Mixing,       ///< splitmix-based mixer (default).
  PaperLiteral, ///< h(x) = size(x) + sum 2^i x_i, as published.
};

/// Memoization scheme configuration.
struct MemoOptions {
  /// Remove unused loop variables before keying (the paper's improved
  /// scheme).
  bool ImprovedKey = true;
  /// Canonicalize (A,B) and (B,A) to one key (extension sketched in
  /// section 5: "comparing a[i] to a[i-1] is the same as comparing
  /// a[i-1] to a[i]").
  bool SymmetricKey = false;
  /// Sort the subscript equations before keying, merging problems that
  /// differ only in array-dimension order (the section 5 note that
  /// "a[i][j] versus a[i+1][j+1] is equivalent to a[j][i] versus
  /// a[j+1][i+1]"). Sound: the equations are a conjunction.
  bool CanonicalizeEquations = false;
  MemoHashKind Hash = MemoHashKind::Mixing;
  /// Number of independently-locked shards (rounded up to a power of
  /// two). 0 = auto: 1 shard for a serial analyzer, a few shards per
  /// thread otherwise (the analyzer resolves this from its thread
  /// count). Sharding affects contention only, never results.
  unsigned Shards = 0;
  /// Maintain a last-use stamp per full/direction entry (updated on
  /// hit and insert, under the shard lock already held) so
  /// evictOldest() can bound a long-lived cache. Off by default: the
  /// batch analyzer never evicts and skips the bookkeeping; edda-serve
  /// turns it on for its size-bounded warm-start checkpoints.
  bool TrackRecency = false;
};

/// What DependenceCache::loadFromFile saw, for warm-start reporting.
struct CacheLoadStats {
  /// Format version the file declared (0 when the header was
  /// unreadable).
  int FileVersion = 0;
  /// Entries loaded into the tables (current-format files only).
  uint64_t LoadedEntries = 0;
  /// Entries present in the file but dropped because its format version
  /// is not the current one.
  uint64_t RejectedEntries = 0;
};

/// The two-table dependence cache.
class DependenceCache {
public:
  explicit DependenceCache(MemoOptions Opts = {});

  const MemoOptions &options() const { return Opts; }

  /// The resolved shard count (power of two).
  unsigned shardCount() const {
    return static_cast<unsigned>(Shards.size());
  }

  /// Full-answer table (bounds included in the key). \p Tag optionally
  /// labels the entry with a content fingerprint (the analyzer passes
  /// its pair fingerprint); 0 means untagged. First-insert-wins keeps
  /// the first tag on a duplicate key.
  std::optional<CascadeResult> lookupFull(const DependenceProblem &P);
  void insertFull(const DependenceProblem &P, const CascadeResult &R,
                  uint64_t Tag = 0);

  /// Direction-vector table (bounds included in the key).
  std::optional<DirectionResult>
  lookupDirections(const DependenceProblem &P);
  void insertDirections(const DependenceProblem &P,
                        const DirectionResult &R, uint64_t Tag = 0);

  /// Drops every full/direction entry whose tag is in \p Tags,
  /// returning the number of entries removed. Because memo keys are
  /// content-addressed, entries belonging to edited-away statements are
  /// merely unreachable, never wrong — invalidation bounds the growth
  /// of a long-lived store, it is not needed for correctness. A shared
  /// key first-inserted by a still-live pair may be removed when its
  /// first inserter's tag goes stale; the only effect is a re-miss.
  uint64_t invalidateFingerprints(const std::vector<uint64_t> &Tags);

  /// GCD-solvability table (bounds excluded from the key).
  std::optional<bool> lookupGcdSolvable(const DependenceProblem &P);
  void insertGcdSolvable(const DependenceProblem &P, bool Solvable);

  /// Accounting for the Table 2 reproduction. Counter reads are exact
  /// once concurrent callers have quiesced.
  uint64_t fullQueries() const { return FullQueries.load(); }
  uint64_t fullHits() const { return FullHits.load(); }
  uint64_t dirQueries() const { return DirQueries.load(); }
  uint64_t dirHits() const { return DirHits.load(); }
  uint64_t uniqueFull() const;
  uint64_t uniqueDirections() const;
  uint64_t gcdQueries() const { return GcdQueries.load(); }
  uint64_t gcdHits() const { return GcdHits.load(); }
  uint64_t uniqueNoBounds() const;

  /// The key a problem maps to (exposed so benches can study hash
  /// collision behaviour directly).
  std::vector<int64_t> keyFor(const DependenceProblem &P,
                              bool IncludeBounds, bool &Swapped) const;

  /// Persistence across compilations (extension, paper section 5):
  /// writes/reads the full-answer and direction tables (witnesses are
  /// not persisted). Returns false on I/O or format errors.
  ///
  /// saveToFile() takes each shard's lock while serializing that
  /// shard, so it is safe to checkpoint while analyzer threads insert
  /// concurrently: every entry is immutable once inserted
  /// (first-insert-wins), so the snapshot is some subset of the
  /// entries that exist when the save returns, and reloading it can
  /// only pre-answer questions with the exact results recomputation
  /// would produce. loadFromFile() is not concurrency-safe — call it
  /// before serving starts.
  bool saveToFile(const std::string &Path) const;
  bool loadFromFile(const std::string &Path);
  /// As above, additionally reporting what happened: on a format-version
  /// mismatch the load still fails (returns false) but \p LoadStats
  /// says which version the file declared and how many entries were
  /// rejected with it, so warm-start callers can log the loss instead
  /// of silently cold-starting.
  bool loadFromFile(const std::string &Path, CacheLoadStats *LoadStats);

  /// Size-bounded "LRU-ish" eviction for long-lived caches: removes
  /// least-recently-used full/direction entries (per the TrackRecency
  /// stamps; entries never touched count as oldest) until at most
  /// \p TargetEntries remain across both tables. The bounds-free GCD
  /// table is never evicted — it is keyed by equation systems only
  /// and stays small. Returns the number of entries removed. Safe
  /// against concurrent lookup/insert; with inserts racing, the bound
  /// is approximate.
  uint64_t evictOldest(uint64_t TargetEntries);

  void clear();

private:
  struct KeyHash {
    MemoHashKind Kind;
    size_t operator()(const std::vector<int64_t> &Key) const;
  };
  using Key = std::vector<int64_t>;

  /// One lock plus its slice of all three tables. Heap-allocated so the
  /// shard array never moves (mutexes are not movable) and adjacent
  /// shards do not false-share.
  struct Shard {
    mutable std::mutex Mutex;
    std::unordered_map<Key, CascadeResult, KeyHash> Full;
    std::unordered_map<Key, DirectionResult, KeyHash> Directions;
    std::unordered_map<Key, bool, KeyHash> Gcd;
    /// Last-use stamps (MemoOptions::TrackRecency), keyed like the
    /// table they shadow.
    std::unordered_map<Key, uint64_t, KeyHash> FullUse;
    std::unordered_map<Key, uint64_t, KeyHash> DirUse;
    /// Fingerprint tags (insertFull/insertDirections Tag != 0), keyed
    /// like the table they shadow; consumed by invalidateFingerprints.
    std::unordered_map<Key, uint64_t, KeyHash> FullTag;
    std::unordered_map<Key, uint64_t, KeyHash> DirTag;

    explicit Shard(MemoHashKind Hash)
        : Full(16, KeyHash{Hash}), Directions(16, KeyHash{Hash}),
          Gcd(16, KeyHash{Hash}), FullUse(16, KeyHash{Hash}),
          DirUse(16, KeyHash{Hash}), FullTag(16, KeyHash{Hash}),
          DirTag(16, KeyHash{Hash}) {}
  };

  MemoOptions Opts;
  std::vector<std::unique_ptr<Shard>> Shards;
  std::atomic<uint64_t> FullQueries{0};
  std::atomic<uint64_t> FullHits{0};
  std::atomic<uint64_t> DirQueries{0};
  std::atomic<uint64_t> DirHits{0};
  std::atomic<uint64_t> GcdQueries{0};
  std::atomic<uint64_t> GcdHits{0};
  /// Monotone clock driving the TrackRecency stamps.
  std::atomic<uint64_t> UseTick{0};

  Shard &shardFor(const Key &K);
};

/// Reverses a direction result between (A,B) and (B,A): '<' and '>'
/// exchange and distances negate. Used by the symmetric key scheme.
DirectionResult reverseDirections(const DirectionResult &R);

/// Remaps a witness between (A,B) and (B,A) x layouts.
std::vector<int64_t> swapWitness(const std::vector<int64_t> &X,
                                 unsigned NumLoopsA, unsigned NumLoopsB);

} // namespace edda

#endif // EDDA_DEPTEST_MEMO_H
