//===- deptest/ExtendedGcd.cpp - Extended GCD preprocessing --------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "deptest/ExtendedGcd.h"

#include "support/WideInt.h"

using namespace edda;

namespace {

/// Extended-Euclid result at width T: Gcd == X*A + Y*B.
template <typename T> struct ExtGcdT {
  T Gcd;
  T X;
  T Y;
};

/// Iterative extended Euclid; the Bezout coefficients are bounded by
/// max(|A|, |B|), so the T-width arithmetic never overflows.
template <typename T> ExtGcdT<T> extGcdOf(T A, T B) {
  T R0 = A, R1 = B;
  T X0(1), X1(0);
  T Y0(0), Y1(1);
  while (R1 != T(0)) {
    T Q = R0 / R1;
    T Tmp;
    Tmp = R0 - Q * R1;
    R0 = R1;
    R1 = Tmp;
    Tmp = X0 - Q * X1;
    X0 = X1;
    X1 = Tmp;
    Tmp = Y0 - Q * Y1;
    Y0 = Y1;
    Y1 = Tmp;
  }
  if (R0 < T(0)) {
    R0 = T(0) - R0;
    X0 = T(0) - X0;
    Y0 = T(0) - Y0;
  }
  return {R0, X0, Y0};
}

/// Applies the unimodular 2x2 row transform
///   (row R1, row R2) <- (P*R1 + Q*R2, S*R1 + U*R2)
/// to \p M. The caller guarantees |P*U - Q*S| == 1. Returns false on
/// overflow.
template <typename T>
bool applyRowPair(MatrixT<T> &M, unsigned R1, unsigned R2, T P, T Q, T S,
                  T U) {
  for (unsigned Col = 0; Col < M.cols(); ++Col) {
    T A = M.at(R1, Col);
    T B = M.at(R2, Col);
    Checked<T> New1 = Checked<T>(P) * A + Checked<T>(Q) * B;
    Checked<T> New2 = Checked<T>(S) * A + Checked<T>(U) * B;
    if (!New1.valid() || !New2.valid())
      return false;
    M.at(R1, Col) = New1.get();
    M.at(R2, Col) = New2.get();
  }
  return true;
}

} // namespace

namespace edda {

template <typename T>
std::optional<std::vector<T>>
DiophantineSolutionT<T>::instantiate(const std::vector<T> &Vals) const {
  assert(Solvable && !Overflow && "instantiating an unusable solution");
  assert(Vals.size() == NumFree && "free-variable arity mismatch");
  std::vector<T> X(NumX, T(0));
  for (unsigned J = 0; J < NumX; ++J) {
    Checked<T> Sum(Offset[J]);
    for (unsigned F = 0; F < NumFree; ++F)
      Sum += Checked<T>(Vals[F]) * FreeRows.at(F, J);
    if (!Sum.valid())
      return std::nullopt;
    X[J] = Sum.get();
  }
  return X;
}

template <typename T>
UnimodularFactorizationT<T> factorUnimodular(const MatrixT<T> &A) {
  const unsigned NumX = A.rows();
  const unsigned NumEq = A.cols();

  // Factor U*A = D with U unimodular and D echelon, using extended-gcd
  // row combinations (Banerjee's extension of Gaussian elimination).
  UnimodularFactorizationT<T> F;
  F.U = MatrixT<T>::identity(NumX);
  F.D = A;
  unsigned Row = 0;
  for (unsigned Col = 0; Col < NumEq && Row < NumX; ++Col) {
    // Zero out all but one entry of this column below Row.
    int Pivot = -1;
    for (unsigned R = Row; R < NumX; ++R) {
      if (F.D.at(R, Col) == T(0))
        continue;
      if (Pivot < 0) {
        Pivot = static_cast<int>(R);
        continue;
      }
      T PV = F.D.at(Pivot, Col);
      T RV = F.D.at(R, Col);
      ExtGcdT<T> G = extGcdOf(PV, RV);
      assert(G.Gcd > T(0) && "gcd of nonzero entries must be positive");
      // (pivot, r) <- (x*pivot + y*r, -(RV/g)*pivot + (PV/g)*r); the
      // transform has determinant (x*PV + y*RV)/g == 1.
      if (!applyRowPair(F.D, static_cast<unsigned>(Pivot), R, G.X, G.Y,
                        T(0) - RV / G.Gcd, PV / G.Gcd) ||
          !applyRowPair(F.U, static_cast<unsigned>(Pivot), R, G.X, G.Y,
                        T(0) - RV / G.Gcd, PV / G.Gcd))
        return F; // Ok stays false
      assert(F.D.at(R, Col) == T(0) && "row combination failed to cancel");
    }
    if (Pivot < 0)
      continue;
    F.D.swapRows(static_cast<unsigned>(Pivot), Row);
    F.U.swapRows(static_cast<unsigned>(Pivot), Row);
    if (F.D.at(Row, Col) < T(0)) {
      if (!F.D.negateRow(Row) || !F.U.negateRow(Row))
        return F;
    }
    ++Row;
  }
  F.Rank = Row;
  F.Ok = true;
  assert(F.D.isEchelon() && "factorization did not produce echelon form");
  return F;
}

template <typename T>
DiophantineSolutionT<T> solveDiophantine(const MatrixT<T> &A,
                                         const std::vector<T> &C) {
  assert(C.size() == A.cols() && "equation count mismatch");
  const unsigned NumX = A.rows();
  const unsigned NumEq = A.cols();

  DiophantineSolutionT<T> Sol;
  Sol.NumX = NumX;

  UnimodularFactorizationT<T> F = factorUnimodular(A);
  if (!F.Ok) {
    Sol.Overflow = true;
    return Sol;
  }
  MatrixT<T> &U = F.U;
  MatrixT<T> &D = F.D;
  const unsigned Rank = F.Rank;
  // Leading column of each pivot row.
  std::vector<unsigned> LeadCol;
  for (unsigned R = 0; R < Rank; ++R) {
    unsigned Col = 0;
    while (Col < NumEq && D.at(R, Col) == T(0))
      ++Col;
    assert(Col < NumEq && "pivot row without leading entry");
    LeadCol.push_back(Col);
  }

  // Back substitution: solve t*D = c column by column. Columns that are
  // some row's leading column determine that row's t; all other columns
  // are consistency checks.
  std::vector<T> Ts(Rank, T(0));
  unsigned NextPivotRow = 0;
  for (unsigned Col = 0; Col < NumEq; ++Col) {
    Checked<T> Partial(T(0));
    for (unsigned R = 0; R < NextPivotRow; ++R)
      Partial += Checked<T>(Ts[R]) * D.at(R, Col);
    if (!Partial.valid()) {
      Sol.Overflow = true;
      return Sol;
    }
    bool IsPivotCol = NextPivotRow < Rank && LeadCol[NextPivotRow] == Col;
    if (IsPivotCol) {
      T Lead = D.at(NextPivotRow, Col);
      std::optional<T> Need = checkedSub(C[Col], Partial.get());
      if (!Need) {
        Sol.Overflow = true;
        return Sol;
      }
      if (*Need % Lead != T(0)) {
        Sol.Solvable = false; // gcd test fails: no integer solution
        return Sol;
      }
      Ts[NextPivotRow] = *Need / Lead;
      ++NextPivotRow;
      continue;
    }
    if (Partial.get() != C[Col]) {
      Sol.Solvable = false; // inconsistent equation
      return Sol;
    }
  }

  // Particular solution: x = (t_0..t_{r-1}, 0, ..) * U; free directions
  // are the remaining rows of U.
  Sol.Solvable = true;
  Sol.NumFree = NumX - Rank;
  Sol.Offset.assign(NumX, T(0));
  for (unsigned J = 0; J < NumX; ++J) {
    Checked<T> Sum(T(0));
    for (unsigned R = 0; R < Rank; ++R)
      Sum += Checked<T>(Ts[R]) * U.at(R, J);
    if (!Sum.valid()) {
      Sol.Overflow = true;
      return Sol;
    }
    Sol.Offset[J] = Sum.get();
  }
  Sol.FreeRows = MatrixT<T>(Sol.NumFree, NumX);
  for (unsigned F2 = 0; F2 < Sol.NumFree; ++F2)
    for (unsigned J = 0; J < NumX; ++J)
      Sol.FreeRows.at(F2, J) = U.at(Rank + F2, J);
  return Sol;
}

template <typename T>
DiophantineSolutionT<T> solveEquations(const DependenceProblem &Problem) {
  assert(Problem.wellFormed() && "malformed problem");
  const unsigned NumX = Problem.numX();
  const unsigned NumEq = static_cast<unsigned>(Problem.Equations.size());
  MatrixT<T> A(NumX, NumEq);
  std::vector<T> C(NumEq, T(0));
  for (unsigned E = 0; E < NumEq; ++E) {
    const XAffine &Eq = Problem.Equations[E];
    for (unsigned J = 0; J < NumX; ++J)
      A.at(J, E) = T(Eq.Coeffs[J]);
    // Equation form + const == 0, so x*A = -const.
    std::optional<T> Rhs = checkedNeg(T(Eq.Const));
    if (!Rhs) {
      DiophantineSolutionT<T> Sol;
      Sol.NumX = NumX;
      Sol.Overflow = true;
      return Sol;
    }
    C[E] = *Rhs;
  }
  return solveDiophantine(A, C);
}

template <typename T>
bool projectToFree(const XAffine &Form, const DiophantineSolutionT<T> &Sol,
                   std::vector<T> &TCoeffs, T &TConst) {
  assert(Sol.Solvable && !Sol.Overflow && "projecting without a solution");
  assert(Form.Coeffs.size() == Sol.NumX && "form arity mismatch");
  Checked<T> Const{T(Form.Const)};
  for (unsigned J = 0; J < Sol.NumX; ++J)
    if (Form.Coeffs[J] != 0)
      Const += Checked<T>(T(Form.Coeffs[J])) * Sol.Offset[J];
  if (!Const.valid())
    return false;
  TConst = Const.get();
  TCoeffs.assign(Sol.NumFree, T(0));
  for (unsigned F = 0; F < Sol.NumFree; ++F) {
    Checked<T> Sum(T(0));
    for (unsigned J = 0; J < Sol.NumX; ++J)
      if (Form.Coeffs[J] != 0)
        Sum += Checked<T>(T(Form.Coeffs[J])) * Sol.FreeRows.at(F, J);
    if (!Sum.valid())
      return false;
    TCoeffs[F] = Sum.get();
  }
  return true;
}

namespace {

/// Projects a raw affine form (already at width T, with any Lo/Hi
/// adjustments applied) onto the free space; the shared worker behind
/// boundsToFreeSpace. Returns false on overflow.
template <typename T>
bool projectRaw(const std::vector<T> &Coeffs, T FormConst,
                const DiophantineSolutionT<T> &Sol,
                std::vector<T> &TCoeffs, T &TConst) {
  Checked<T> Const{FormConst};
  for (unsigned J = 0; J < Sol.NumX; ++J)
    if (Coeffs[J] != T(0))
      Const += Checked<T>(Coeffs[J]) * Sol.Offset[J];
  if (!Const.valid())
    return false;
  TConst = Const.get();
  TCoeffs.assign(Sol.NumFree, T(0));
  for (unsigned F = 0; F < Sol.NumFree; ++F) {
    Checked<T> Sum(T(0));
    for (unsigned J = 0; J < Sol.NumX; ++J)
      if (Coeffs[J] != T(0))
        Sum += Checked<T>(Coeffs[J]) * Sol.FreeRows.at(F, J);
    if (!Sum.valid())
      return false;
    TCoeffs[F] = Sum.get();
  }
  return true;
}

} // namespace

template <typename T>
std::optional<LinearSystemT<T>>
boundsToFreeSpace(const DependenceProblem &Problem,
                  const DiophantineSolutionT<T> &Sol) {
  assert(Sol.Solvable && !Sol.Overflow && "no solution to project onto");
  LinearSystemT<T> System(Sol.NumFree);
  std::vector<T> TCoeffs;
  T TConst(0);

  // The Lo/Hi form adjustments are computed at width T so that the wide
  // retry survives coefficients at the edge of the int64 range.
  for (unsigned L = 0; L < Problem.numLoopVars(); ++L) {
    if (Problem.Lo[L]) {
      // Lo - x_l <= 0.
      const XAffine &Form = *Problem.Lo[L];
      std::vector<T> Coeffs(Form.Coeffs.begin(), Form.Coeffs.end());
      std::optional<T> NewCoeff = checkedSub(Coeffs[L], T(1));
      if (!NewCoeff)
        return std::nullopt;
      Coeffs[L] = *NewCoeff;
      if (!projectRaw(Coeffs, T(Form.Const), Sol, TCoeffs, TConst))
        return std::nullopt;
      std::optional<T> Bound = checkedNeg(TConst);
      if (!Bound)
        return std::nullopt;
      System.addLe(TCoeffs, *Bound);
    }
    if (Problem.Hi[L]) {
      // x_l - Hi <= 0.
      const XAffine &Form = *Problem.Hi[L];
      std::vector<T> Coeffs(Form.Coeffs.size(), T(0));
      for (unsigned J = 0; J < Form.Coeffs.size(); ++J) {
        std::optional<T> Neg = checkedNeg(T(Form.Coeffs[J]));
        if (!Neg)
          return std::nullopt;
        Coeffs[J] = *Neg;
      }
      std::optional<T> NegConst = checkedNeg(T(Form.Const));
      if (!NegConst)
        return std::nullopt;
      std::optional<T> NewCoeff = checkedAdd(Coeffs[L], T(1));
      if (!NewCoeff)
        return std::nullopt;
      Coeffs[L] = *NewCoeff;
      if (!projectRaw(Coeffs, *NegConst, Sol, TCoeffs, TConst))
        return std::nullopt;
      std::optional<T> Bound = checkedNeg(TConst);
      if (!Bound)
        return std::nullopt;
      System.addLe(TCoeffs, *Bound);
    }
  }
  return System;
}

template struct DiophantineSolutionT<int64_t>;
template struct DiophantineSolutionT<Int128>;
template struct UnimodularFactorizationT<int64_t>;
template struct UnimodularFactorizationT<Int128>;
template UnimodularFactorizationT<int64_t>
factorUnimodular(const MatrixT<int64_t> &);
template UnimodularFactorizationT<Int128>
factorUnimodular(const MatrixT<Int128> &);
template DiophantineSolutionT<int64_t>
solveDiophantine(const MatrixT<int64_t> &, const std::vector<int64_t> &);
template DiophantineSolutionT<Int128>
solveDiophantine(const MatrixT<Int128> &, const std::vector<Int128> &);
template DiophantineSolutionT<int64_t>
solveEquations<int64_t>(const DependenceProblem &);
template DiophantineSolutionT<Int128>
solveEquations<Int128>(const DependenceProblem &);
template bool projectToFree(const XAffine &,
                            const DiophantineSolutionT<int64_t> &,
                            std::vector<int64_t> &, int64_t &);
template bool projectToFree(const XAffine &,
                            const DiophantineSolutionT<Int128> &,
                            std::vector<Int128> &, Int128 &);
template std::optional<LinearSystemT<int64_t>>
boundsToFreeSpace(const DependenceProblem &,
                  const DiophantineSolutionT<int64_t> &);
template std::optional<LinearSystemT<Int128>>
boundsToFreeSpace(const DependenceProblem &,
                  const DiophantineSolutionT<Int128> &);

} // namespace edda

bool edda::simpleGcdTest(const DependenceProblem &Problem) {
  for (const XAffine &Eq : Problem.Equations) {
    int64_t G = 0;
    for (int64_t Coeff : Eq.Coeffs)
      G = gcd64(G, Coeff);
    if (G == 0) {
      if (Eq.Const != 0)
        return false; // constant contradiction
      continue;
    }
    if (Eq.Const % G != 0)
      return false;
  }
  return true;
}
