//===- deptest/ExtendedGcd.cpp - Extended GCD preprocessing --------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "deptest/ExtendedGcd.h"

#include "support/IntMath.h"

using namespace edda;

std::optional<std::vector<int64_t>>
DiophantineSolution::instantiate(const std::vector<int64_t> &T) const {
  assert(Solvable && !Overflow && "instantiating an unusable solution");
  assert(T.size() == NumFree && "free-variable arity mismatch");
  std::vector<int64_t> X(NumX);
  for (unsigned J = 0; J < NumX; ++J) {
    CheckedInt Sum(Offset[J]);
    for (unsigned F = 0; F < NumFree; ++F)
      Sum += CheckedInt(T[F]) * FreeRows.at(F, J);
    if (!Sum.valid())
      return std::nullopt;
    X[J] = Sum.get();
  }
  return X;
}

namespace {

/// Applies the unimodular 2x2 row transform
///   (row R1, row R2) <- (P*R1 + Q*R2, S*R1 + T*R2)
/// to \p M. The caller guarantees |P*T - Q*S| == 1. Returns false on
/// overflow.
bool applyRowPair(IntMatrix &M, unsigned R1, unsigned R2, int64_t P,
                  int64_t Q, int64_t S, int64_t T) {
  for (unsigned Col = 0; Col < M.cols(); ++Col) {
    int64_t A = M.at(R1, Col);
    int64_t B = M.at(R2, Col);
    CheckedInt New1 = CheckedInt(P) * A + CheckedInt(Q) * B;
    CheckedInt New2 = CheckedInt(S) * A + CheckedInt(T) * B;
    if (!New1.valid() || !New2.valid())
      return false;
    M.at(R1, Col) = New1.get();
    M.at(R2, Col) = New2.get();
  }
  return true;
}

} // namespace

UnimodularFactorization edda::factorUnimodular(const IntMatrix &A) {
  const unsigned NumX = A.rows();
  const unsigned NumEq = A.cols();

  // Factor U*A = D with U unimodular and D echelon, using extended-gcd
  // row combinations (Banerjee's extension of Gaussian elimination).
  UnimodularFactorization F;
  F.U = IntMatrix::identity(NumX);
  F.D = A;
  unsigned Row = 0;
  for (unsigned Col = 0; Col < NumEq && Row < NumX; ++Col) {
    // Zero out all but one entry of this column below Row.
    int Pivot = -1;
    for (unsigned R = Row; R < NumX; ++R) {
      if (F.D.at(R, Col) == 0)
        continue;
      if (Pivot < 0) {
        Pivot = static_cast<int>(R);
        continue;
      }
      int64_t PV = F.D.at(Pivot, Col);
      int64_t RV = F.D.at(R, Col);
      ExtGcdResult G = extGcd64(PV, RV);
      assert(G.Gcd > 0 && "gcd of nonzero entries must be positive");
      // (pivot, r) <- (x*pivot + y*r, -(RV/g)*pivot + (PV/g)*r); the
      // transform has determinant (x*PV + y*RV)/g == 1.
      if (!applyRowPair(F.D, Pivot, R, G.X, G.Y, -(RV / G.Gcd),
                        PV / G.Gcd) ||
          !applyRowPair(F.U, Pivot, R, G.X, G.Y, -(RV / G.Gcd),
                        PV / G.Gcd))
        return F; // Ok stays false
      assert(F.D.at(R, Col) == 0 && "row combination failed to cancel");
    }
    if (Pivot < 0)
      continue;
    F.D.swapRows(Pivot, Row);
    F.U.swapRows(Pivot, Row);
    if (F.D.at(Row, Col) < 0) {
      if (!F.D.negateRow(Row) || !F.U.negateRow(Row))
        return F;
    }
    ++Row;
  }
  F.Rank = Row;
  F.Ok = true;
  assert(F.D.isEchelon() && "factorization did not produce echelon form");
  return F;
}

DiophantineSolution edda::solveDiophantine(const IntMatrix &A,
                                           const std::vector<int64_t> &C) {
  assert(C.size() == A.cols() && "equation count mismatch");
  const unsigned NumX = A.rows();
  const unsigned NumEq = A.cols();

  DiophantineSolution Sol;
  Sol.NumX = NumX;

  UnimodularFactorization F = factorUnimodular(A);
  if (!F.Ok) {
    Sol.Overflow = true;
    return Sol;
  }
  IntMatrix &U = F.U;
  IntMatrix &D = F.D;
  const unsigned Rank = F.Rank;
  // Leading column of each pivot row.
  std::vector<unsigned> LeadCol;
  for (unsigned R = 0; R < Rank; ++R) {
    unsigned Col = 0;
    while (Col < NumEq && D.at(R, Col) == 0)
      ++Col;
    assert(Col < NumEq && "pivot row without leading entry");
    LeadCol.push_back(Col);
  }

  // Back substitution: solve t*D = c column by column. Columns that are
  // some row's leading column determine that row's t; all other columns
  // are consistency checks.
  std::vector<int64_t> T(Rank, 0);
  unsigned NextPivotRow = 0;
  for (unsigned Col = 0; Col < NumEq; ++Col) {
    CheckedInt Partial(0);
    for (unsigned R = 0; R < NextPivotRow; ++R)
      Partial += CheckedInt(T[R]) * D.at(R, Col);
    if (!Partial.valid()) {
      Sol.Overflow = true;
      return Sol;
    }
    bool IsPivotCol =
        NextPivotRow < Rank && LeadCol[NextPivotRow] == Col;
    if (IsPivotCol) {
      int64_t Lead = D.at(NextPivotRow, Col);
      std::optional<int64_t> Need = checkedSub(C[Col], Partial.get());
      if (!Need) {
        Sol.Overflow = true;
        return Sol;
      }
      if (*Need % Lead != 0) {
        Sol.Solvable = false; // gcd test fails: no integer solution
        return Sol;
      }
      T[NextPivotRow] = *Need / Lead;
      ++NextPivotRow;
      continue;
    }
    if (Partial.get() != C[Col]) {
      Sol.Solvable = false; // inconsistent equation
      return Sol;
    }
  }

  // Particular solution: x = (t_0..t_{r-1}, 0, ..) * U; free directions
  // are the remaining rows of U.
  Sol.Solvable = true;
  Sol.NumFree = NumX - Rank;
  Sol.Offset.assign(NumX, 0);
  for (unsigned J = 0; J < NumX; ++J) {
    CheckedInt Sum(0);
    for (unsigned R = 0; R < Rank; ++R)
      Sum += CheckedInt(T[R]) * U.at(R, J);
    if (!Sum.valid()) {
      Sol.Overflow = true;
      return Sol;
    }
    Sol.Offset[J] = Sum.get();
  }
  Sol.FreeRows = IntMatrix(Sol.NumFree, NumX);
  for (unsigned F = 0; F < Sol.NumFree; ++F)
    for (unsigned J = 0; J < NumX; ++J)
      Sol.FreeRows.at(F, J) = U.at(Rank + F, J);
  return Sol;
}

DiophantineSolution edda::solveEquations(const DependenceProblem &Problem) {
  assert(Problem.wellFormed() && "malformed problem");
  const unsigned NumX = Problem.numX();
  const unsigned NumEq = static_cast<unsigned>(Problem.Equations.size());
  IntMatrix A(NumX, NumEq);
  std::vector<int64_t> C(NumEq);
  for (unsigned E = 0; E < NumEq; ++E) {
    const XAffine &Eq = Problem.Equations[E];
    for (unsigned J = 0; J < NumX; ++J)
      A.at(J, E) = Eq.Coeffs[J];
    // Equation form + const == 0, so x*A = -const.
    std::optional<int64_t> Rhs = checkedNeg(Eq.Const);
    if (!Rhs) {
      DiophantineSolution Sol;
      Sol.NumX = NumX;
      Sol.Overflow = true;
      return Sol;
    }
    C[E] = *Rhs;
  }
  return solveDiophantine(A, C);
}

bool edda::projectToFree(const XAffine &Form,
                         const DiophantineSolution &Sol,
                         std::vector<int64_t> &TCoeffs, int64_t &TConst) {
  assert(Sol.Solvable && !Sol.Overflow && "projecting without a solution");
  assert(Form.Coeffs.size() == Sol.NumX && "form arity mismatch");
  CheckedInt Const(Form.Const);
  for (unsigned J = 0; J < Sol.NumX; ++J)
    if (Form.Coeffs[J] != 0)
      Const += CheckedInt(Form.Coeffs[J]) * Sol.Offset[J];
  if (!Const.valid())
    return false;
  TConst = Const.get();
  TCoeffs.assign(Sol.NumFree, 0);
  for (unsigned F = 0; F < Sol.NumFree; ++F) {
    CheckedInt Sum(0);
    for (unsigned J = 0; J < Sol.NumX; ++J)
      if (Form.Coeffs[J] != 0)
        Sum += CheckedInt(Form.Coeffs[J]) * Sol.FreeRows.at(F, J);
    if (!Sum.valid())
      return false;
    TCoeffs[F] = Sum.get();
  }
  return true;
}

std::optional<LinearSystem>
edda::boundsToFreeSpace(const DependenceProblem &Problem,
                        const DiophantineSolution &Sol) {
  assert(Sol.Solvable && !Sol.Overflow && "no solution to project onto");
  LinearSystem System(Sol.NumFree);
  std::vector<int64_t> TCoeffs;
  int64_t TConst;

  for (unsigned L = 0; L < Problem.numLoopVars(); ++L) {
    if (Problem.Lo[L]) {
      // Lo - x_l <= 0.
      XAffine Form = *Problem.Lo[L];
      std::optional<int64_t> NewCoeff = checkedSub(Form.Coeffs[L], 1);
      if (!NewCoeff)
        return std::nullopt;
      Form.Coeffs[L] = *NewCoeff;
      if (!projectToFree(Form, Sol, TCoeffs, TConst))
        return std::nullopt;
      std::optional<int64_t> Bound = checkedNeg(TConst);
      if (!Bound)
        return std::nullopt;
      System.addLe(TCoeffs, *Bound);
    }
    if (Problem.Hi[L]) {
      // x_l - Hi <= 0.
      XAffine Form = *Problem.Hi[L];
      for (int64_t &Coeff : Form.Coeffs) {
        std::optional<int64_t> Neg = checkedNeg(Coeff);
        if (!Neg)
          return std::nullopt;
        Coeff = *Neg;
      }
      std::optional<int64_t> NegConst = checkedNeg(Form.Const);
      std::optional<int64_t> NewCoeff = checkedAdd(Form.Coeffs[L], 1);
      if (!NegConst || !NewCoeff)
        return std::nullopt;
      Form.Const = *NegConst;
      Form.Coeffs[L] = *NewCoeff;
      if (!projectToFree(Form, Sol, TCoeffs, TConst))
        return std::nullopt;
      std::optional<int64_t> Bound = checkedNeg(TConst);
      if (!Bound)
        return std::nullopt;
      System.addLe(TCoeffs, *Bound);
    }
  }
  return System;
}

bool edda::simpleGcdTest(const DependenceProblem &Problem) {
  for (const XAffine &Eq : Problem.Equations) {
    int64_t G = 0;
    for (int64_t Coeff : Eq.Coeffs)
      G = gcd64(G, Coeff);
    if (G == 0) {
      if (Eq.Const != 0)
        return false; // constant contradiction
      continue;
    }
    if (Eq.Const % G != 0)
      return false;
  }
  return true;
}
