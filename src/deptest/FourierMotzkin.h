//===- deptest/FourierMotzkin.h - Fourier-Motzkin backup test --*- C++ -*-===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The backup Fourier-Motzkin test (paper section 3.5). Variables are
/// eliminated one at a time by combining every upper bound with every
/// lower bound; real infeasibility proves independence. When feasible,
/// the paper's heuristic recovers an integer witness by back substitution
/// picking the middle integer of each allowed range. An empty integer
/// range at the first back-substitution step (where the range is
/// constant) is exact independence; empty ranges later trigger branch &
/// bound with a node budget. Each derived constraint is divided by the
/// gcd of its coefficients with a floored bound — sound over the
/// integers and strictly tightening, so the eliminations stay small.
///
//===----------------------------------------------------------------------===//

#ifndef EDDA_DEPTEST_FOURIERMOTZKIN_H
#define EDDA_DEPTEST_FOURIERMOTZKIN_H

#include "deptest/LinearSystem.h"

#include <cstdint>
#include <optional>
#include <vector>

namespace edda {

/// Resource limits for the Fourier-Motzkin test.
struct FourierMotzkinOptions {
  /// Abort (Unknown) when an elimination round grows the system past
  /// this many constraints.
  unsigned MaxConstraints = 4096;
  /// Branch & bound node budget; 0 disables explicit branch & bound
  /// (the paper's configuration — it reports never needing it).
  unsigned MaxBranchNodes = 64;
};

/// Outcome of the Fourier-Motzkin test.
struct FmResult {
  enum class Status {
    Independent, ///< Real-infeasible, or integer-empty with certainty.
    Dependent,   ///< Integral witness found.
    Unknown,     ///< Budget exhausted or overflow: conservatively
                 ///< dependent, flagged inexact.
  };

  Status St = Status::Unknown;
  /// Witness when Dependent.
  std::optional<std::vector<int64_t>> Sample;
  /// True when explicit branch & bound was entered.
  bool UsedBranchAndBound = false;
  /// Branch nodes expended.
  unsigned BranchNodes = 0;
};

/// Runs Fourier-Motzkin elimination with integral witness recovery on
/// \p System.
FmResult runFourierMotzkin(const LinearSystem &System,
                           const FourierMotzkinOptions &Opts = {});

} // namespace edda

#endif // EDDA_DEPTEST_FOURIERMOTZKIN_H
