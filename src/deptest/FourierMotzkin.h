//===- deptest/FourierMotzkin.h - Fourier-Motzkin backup test --*- C++ -*-===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The backup Fourier-Motzkin test (paper section 3.5). Variables are
/// eliminated one at a time by combining every upper bound with every
/// lower bound; real infeasibility proves independence. When feasible,
/// the paper's heuristic recovers an integer witness by back substitution
/// picking the middle integer of each allowed range. An empty integer
/// range at the first back-substitution step (where the range is
/// constant) is exact independence; empty ranges later trigger branch &
/// bound with a node budget. Each derived constraint is divided by the
/// gcd of its coefficients with a floored bound — sound over the
/// integers and strictly tightening, so the eliminations stay small.
///
/// Templated on the scalar type for the widening ladder: int64_t is the
/// fast path, Int128 the retry tier. Only overflow-caused Unknowns are
/// worth retrying wide, so the result distinguishes them from budget
/// exhaustion via the Overflowed flag.
///
//===----------------------------------------------------------------------===//

#ifndef EDDA_DEPTEST_FOURIERMOTZKIN_H
#define EDDA_DEPTEST_FOURIERMOTZKIN_H

#include "deptest/LinearSystem.h"

#include <cstdint>
#include <optional>
#include <vector>

namespace edda {

/// Resource limits for the Fourier-Motzkin test.
struct FourierMotzkinOptions {
  /// Abort (Unknown) when an elimination round grows the system past
  /// this many constraints.
  unsigned MaxConstraints = 4096;
  /// Branch & bound node budget; 0 disables explicit branch & bound
  /// (the paper's configuration — it reports never needing it).
  unsigned MaxBranchNodes = 64;
  /// Abort (Unknown) after this many upper-x-lower combine operations
  /// across the whole solve, branch & bound included. Combines are the
  /// unit elimination cost actually scales with — MaxConstraints only
  /// caps the surviving system, not the work spent deriving it — and
  /// the unit the direction hierarchy's refinement budget is charged
  /// in (DepStats::FmWork). 0 disables the cap.
  uint64_t MaxCombines = 0;
};

/// Outcome of the Fourier-Motzkin test.
template <typename T> struct FmResultT {
  enum class Status {
    Independent, ///< Real-infeasible, or integer-empty with certainty.
    Dependent,   ///< Integral witness found.
    Unknown,     ///< Budget exhausted or overflow: conservatively
                 ///< dependent, flagged inexact.
  };

  Status St = Status::Unknown;
  /// Witness when Dependent.
  std::optional<std::vector<T>> Sample;
  /// True when explicit branch & bound was entered.
  bool UsedBranchAndBound = false;
  /// Branch nodes expended.
  unsigned BranchNodes = 0;
  /// Upper-x-lower combine operations performed (the solver's work
  /// measure; see FourierMotzkinOptions::MaxCombines).
  uint64_t Combines = 0;
  /// True when Unknown was caused by arithmetic overflow (so retrying
  /// at a wider scalar type can help); false for budget exhaustion.
  bool Overflowed = false;
};

/// The 64-bit fast-path instantiation (the historical name).
using FmResult = FmResultT<int64_t>;

/// Runs Fourier-Motzkin elimination with integral witness recovery on
/// \p System.
template <typename T>
FmResultT<T> runFourierMotzkin(const LinearSystemT<T> &System,
                               const FourierMotzkinOptions &Opts = {});

} // namespace edda

#endif // EDDA_DEPTEST_FOURIERMOTZKIN_H
