//===- deptest/Svpc.cpp - Single Variable Per Constraint test ------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "deptest/Svpc.h"

#include "support/WideInt.h"

using namespace edda;

namespace edda {

template <typename T> bool VarIntervalsT<T>::contradictory() const {
  for (unsigned V = 0; V < Lo.size(); ++V)
    if (Lo[V] && Hi[V] && *Lo[V] > *Hi[V])
      return true;
  return false;
}

template <typename T> SvpcResultT<T> runSvpc(const LinearSystemT<T> &System) {
  SvpcResultT<T> Result;
  Result.Intervals = VarIntervalsT<T>(System.numVars());

  for (const LinearConstraintT<T> &C : System.constraints()) {
    unsigned Active = C.numActiveVars();
    if (Active == 0) {
      if (C.Bound < T(0)) {
        Result.St = SvpcResultT<T>::Status::Independent;
        return Result;
      }
      continue; // trivially true
    }
    if (Active > 1) {
      Result.MultiVar.push_back(C);
      continue;
    }
    unsigned V = C.soleVar();
    T A = C.Coeffs[V];
    // Arbitrary coefficients reach this division, so the (min, -1) pair
    // is live: route it through the checked variants and report overflow
    // rather than wrapping.
    std::optional<T> Limit = A > T(0) ? checkedFloorDiv(C.Bound, A)
                                      : checkedCeilDiv(C.Bound, A);
    if (!Limit) {
      Result.St = SvpcResultT<T>::Status::Overflow;
      return Result;
    }
    if (A > T(0))
      Result.Intervals.tightenHi(V, *Limit);
    else
      Result.Intervals.tightenLo(V, *Limit);
  }

  if (Result.Intervals.contradictory()) {
    Result.St = SvpcResultT<T>::Status::Independent;
    return Result;
  }
  if (!Result.MultiVar.empty()) {
    Result.St = SvpcResultT<T>::Status::NeedsMore;
    return Result;
  }

  Result.St = SvpcResultT<T>::Status::Dependent;
  std::vector<T> Sample(System.numVars(), T(0));
  for (unsigned V = 0; V < System.numVars(); ++V) {
    if (Result.Intervals.Lo[V])
      Sample[V] = *Result.Intervals.Lo[V];
    else if (Result.Intervals.Hi[V])
      Sample[V] = *Result.Intervals.Hi[V];
    // Unconstrained variables stay 0.
  }
  Result.Sample = std::move(Sample);
  return Result;
}

template struct VarIntervalsT<int64_t>;
template struct VarIntervalsT<Int128>;
template struct SvpcResultT<int64_t>;
template struct SvpcResultT<Int128>;
template SvpcResultT<int64_t> runSvpc(const LinearSystemT<int64_t> &);
template SvpcResultT<Int128> runSvpc(const LinearSystemT<Int128> &);

} // namespace edda
