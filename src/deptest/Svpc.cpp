//===- deptest/Svpc.cpp - Single Variable Per Constraint test ------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "deptest/Svpc.h"

#include "support/IntMath.h"

using namespace edda;

bool VarIntervals::contradictory() const {
  for (unsigned V = 0; V < Lo.size(); ++V)
    if (Lo[V] && Hi[V] && *Lo[V] > *Hi[V])
      return true;
  return false;
}

SvpcResult edda::runSvpc(const LinearSystem &System) {
  SvpcResult Result;
  Result.Intervals = VarIntervals(System.numVars());

  for (const LinearConstraint &C : System.constraints()) {
    unsigned Active = C.numActiveVars();
    if (Active == 0) {
      if (C.Bound < 0) {
        Result.St = SvpcResult::Status::Independent;
        return Result;
      }
      continue; // trivially true
    }
    if (Active > 1) {
      Result.MultiVar.push_back(C);
      continue;
    }
    unsigned V = C.soleVar();
    int64_t A = C.Coeffs[V];
    if (A > 0)
      Result.Intervals.tightenHi(V, floorDiv(C.Bound, A));
    else
      Result.Intervals.tightenLo(V, ceilDiv(C.Bound, A));
  }

  if (Result.Intervals.contradictory()) {
    Result.St = SvpcResult::Status::Independent;
    return Result;
  }
  if (!Result.MultiVar.empty()) {
    Result.St = SvpcResult::Status::NeedsMore;
    return Result;
  }

  Result.St = SvpcResult::Status::Dependent;
  std::vector<int64_t> Sample(System.numVars(), 0);
  for (unsigned V = 0; V < System.numVars(); ++V) {
    if (Result.Intervals.Lo[V])
      Sample[V] = *Result.Intervals.Lo[V];
    else if (Result.Intervals.Hi[V])
      Sample[V] = *Result.Intervals.Hi[V];
    // Unconstrained variables stay 0.
  }
  Result.Sample = std::move(Sample);
  return Result;
}
