//===- deptest/ProblemIO.cpp - Textual dependence problems ----------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "deptest/ProblemIO.h"

#include <charconv>
#include <sstream>
#include <vector>

using namespace edda;

namespace {

/// Splits a line into whitespace-separated tokens, dropping '#'
/// comments.
std::vector<std::string> tokenize(const std::string &Line) {
  std::vector<std::string> Tokens;
  std::istringstream In(Line);
  std::string Token;
  while (In >> Token) {
    if (!Token.empty() && Token[0] == '#')
      break;
    Tokens.push_back(Token);
  }
  return Tokens;
}

bool parseInt(const std::string &Token, int64_t &Out) {
  const char *Begin = Token.data();
  const char *End = Begin + Token.size();
  auto [Ptr, Ec] = std::from_chars(Begin, End, Out);
  return Ec == std::errc() && Ptr == End;
}

} // namespace

ProblemParseResult edda::parseProblemText(std::string_view Text) {
  ProblemParseResult Result;
  auto Fail = [&Result](unsigned LineNo, const std::string &Message) {
    Result.Problem.reset();
    Result.Error =
        "line " + std::to_string(LineNo) + ": " + Message;
    return Result;
  };

  std::istringstream In{std::string(Text)};
  std::string Line;
  unsigned LineNo = 0;
  bool SawProblem = false, SawHeader = false, SawEnd = false;
  DependenceProblem P;

  while (std::getline(In, Line)) {
    ++LineNo;
    std::vector<std::string> Tokens = tokenize(Line);
    if (Tokens.empty())
      continue;
    if (SawEnd)
      return Fail(LineNo, "content after 'end'");
    const std::string &Kind = Tokens[0];

    if (!SawProblem) {
      if (Kind != "problem")
        return Fail(LineNo, "expected 'problem'");
      SawProblem = true;
      continue;
    }
    if (Kind == "end") {
      SawEnd = true;
      continue;
    }
    if (Kind == "loops") {
      // loops <nA> <nB> common <c> symbolic <s>
      int64_t NA, NB, Common, Symbolic;
      if (Tokens.size() != 7 || Tokens[3] != "common" ||
          Tokens[5] != "symbolic" || !parseInt(Tokens[1], NA) ||
          !parseInt(Tokens[2], NB) || !parseInt(Tokens[4], Common) ||
          !parseInt(Tokens[6], Symbolic) || NA < 0 || NB < 0 ||
          Common < 0 || Symbolic < 0 || NA > 16 || NB > 16 ||
          Symbolic > 16)
        return Fail(LineNo,
                    "expected 'loops nA nB common c symbolic s'");
      if (Common > NA || Common > NB)
        return Fail(LineNo, "more common loops than loops");
      P.NumLoopsA = static_cast<unsigned>(NA);
      P.NumLoopsB = static_cast<unsigned>(NB);
      P.NumCommon = static_cast<unsigned>(Common);
      P.NumSymbolic = static_cast<unsigned>(Symbolic);
      P.Lo.assign(P.numLoopVars(), std::nullopt);
      P.Hi.assign(P.numLoopVars(), std::nullopt);
      SawHeader = true;
      continue;
    }
    if (!SawHeader)
      return Fail(LineNo, "'loops' header must come first");

    if (Kind == "eq") {
      // eq c0 .. c{numX-1} = const
      if (Tokens.size() != P.numX() + 3 ||
          Tokens[P.numX() + 1] != "=")
        return Fail(LineNo, "expected 'eq <" +
                                std::to_string(P.numX()) +
                                " coeffs> = const'");
      XAffine Eq(P.numX());
      for (unsigned J = 0; J < P.numX(); ++J)
        if (!parseInt(Tokens[1 + J], Eq.Coeffs[J]))
          return Fail(LineNo, "bad coefficient '" + Tokens[1 + J] +
                                  "'");
      if (!parseInt(Tokens[P.numX() + 2], Eq.Const))
        return Fail(LineNo, "bad constant");
      P.Equations.push_back(std::move(Eq));
      continue;
    }
    if (Kind == "lo" || Kind == "hi") {
      // lo <var> : c           (constant bound)
      // lo <var> c0 .. : c     (affine bound)
      if (Tokens.size() < 4)
        return Fail(LineNo, "bound line too short");
      int64_t Var;
      if (!parseInt(Tokens[1], Var) || Var < 0 ||
          Var >= static_cast<int64_t>(P.numLoopVars()))
        return Fail(LineNo, "bad loop variable index");
      XAffine Form(P.numX());
      size_t ColonIdx;
      if (Tokens[2] == ":") {
        ColonIdx = 2;
      } else {
        if (Tokens.size() != P.numX() + 4 ||
            Tokens[P.numX() + 2] != ":")
          return Fail(LineNo, "expected ':' before the constant");
        for (unsigned J = 0; J < P.numX(); ++J)
          if (!parseInt(Tokens[2 + J], Form.Coeffs[J]))
            return Fail(LineNo, "bad coefficient");
        ColonIdx = P.numX() + 2;
      }
      if (ColonIdx + 2 != Tokens.size() ||
          !parseInt(Tokens[ColonIdx + 1], Form.Const))
        return Fail(LineNo, "bad bound constant");
      if (Kind == "lo")
        P.Lo[static_cast<unsigned>(Var)] = std::move(Form);
      else
        P.Hi[static_cast<unsigned>(Var)] = std::move(Form);
      continue;
    }
    return Fail(LineNo, "unknown directive '" + Kind + "'");
  }

  if (!SawProblem || !SawHeader)
    return Fail(LineNo, "missing 'problem'/'loops' header");
  if (!SawEnd)
    return Fail(LineNo, "missing 'end'");
  if (!P.wellFormed())
    return Fail(LineNo, "malformed problem");
  Result.Problem = std::move(P);
  return Result;
}

std::string edda::printProblemText(const DependenceProblem &P) {
  std::string Out = "problem\n";
  Out += "  loops " + std::to_string(P.NumLoopsA) + " " +
         std::to_string(P.NumLoopsB) + " common " +
         std::to_string(P.NumCommon) + " symbolic " +
         std::to_string(P.NumSymbolic) + "\n";
  for (const XAffine &Eq : P.Equations) {
    Out += "  eq";
    for (int64_t C : Eq.Coeffs)
      Out += " " + std::to_string(C);
    Out += " = " + std::to_string(Eq.Const) + "\n";
  }
  for (unsigned L = 0; L < P.numLoopVars(); ++L) {
    for (const char *Which : {"lo", "hi"}) {
      const std::optional<XAffine> &B =
          Which[0] == 'l' ? P.Lo[L] : P.Hi[L];
      if (!B)
        continue;
      Out += std::string("  ") + Which + " " + std::to_string(L);
      if (!B->isConstant())
        for (int64_t C : B->Coeffs)
          Out += " " + std::to_string(C);
      Out += " : " + std::to_string(B->Const) + "\n";
    }
  }
  Out += "end\n";
  return Out;
}
