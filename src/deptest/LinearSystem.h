//===- deptest/LinearSystem.h - Inequality systems over t ------*- C++ -*-===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// After extended-GCD preprocessing all the tests work on one shape of
/// input (a deliberate property the paper calls out in section 7): a
/// conjunction of integer linear inequalities  sum_k C_k * t_k <= B  over
/// the free variables t left by the GCD substitution. LinearSystem is
/// that conjunction.
///
/// The scalar type is a template parameter: the 64-bit instantiation is
/// the fast path and the Int128 instantiation backs the widened retry
/// when 64-bit preprocessing or testing overflows (docs/ALGORITHMS.md,
/// "the widening ladder").
///
//===----------------------------------------------------------------------===//

#ifndef EDDA_DEPTEST_LINEARSYSTEM_H
#define EDDA_DEPTEST_LINEARSYSTEM_H

#include "support/Int128.h"

#include <cassert>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace edda {

/// One inequality: sum_k Coeffs[k] * t_k <= Bound. Coeffs is dense with
/// exactly the system's variable count.
template <typename T> struct LinearConstraintT {
  std::vector<T> Coeffs;
  T Bound = T(0);

  LinearConstraintT() = default;
  LinearConstraintT(std::vector<T> Coeffs, T Bound)
      : Coeffs(std::move(Coeffs)), Bound(Bound) {}

  /// Number of variables with nonzero coefficient.
  unsigned numActiveVars() const;

  /// Index of the single active variable. \pre numActiveVars() == 1.
  unsigned soleVar() const;

  /// Evaluates the left-hand side at \p Point; std::nullopt on overflow.
  std::optional<T> lhsAt(const std::vector<T> &Point) const;

  /// True when \p Point satisfies the constraint (overflow counts as
  /// unsatisfied).
  bool satisfiedBy(const std::vector<T> &Point) const;

  /// Divides through by the gcd of the coefficients, flooring the bound —
  /// valid (and tightening) over the integers. No-op for constant
  /// constraints. Returns false when the constraint is a constant
  /// falsehood 0 <= Bound with Bound < 0.
  bool normalize();

  bool operator==(const LinearConstraintT &RHS) const = default;
};

/// A conjunction of linear constraints over NumVars integer unknowns.
template <typename T> class LinearSystemT {
public:
  explicit LinearSystemT(unsigned NumVars) : NumVars(NumVars) {}

  unsigned numVars() const { return NumVars; }

  const std::vector<LinearConstraintT<T>> &constraints() const {
    return Constraints;
  }
  std::vector<LinearConstraintT<T>> &constraints() { return Constraints; }

  /// Appends a constraint. \pre Coeffs.size() == numVars().
  void add(LinearConstraintT<T> C) {
    assert(C.Coeffs.size() == NumVars && "constraint arity mismatch");
    Constraints.push_back(std::move(C));
  }

  /// Convenience: adds sum Coeffs*t <= Bound.
  void addLe(std::vector<T> Coeffs, T Bound) {
    add(LinearConstraintT<T>(std::move(Coeffs), Bound));
  }

  /// True when \p Point satisfies every constraint.
  bool satisfiedBy(const std::vector<T> &Point) const;

  /// Replaces t_Var with the constant \p Value in every constraint.
  /// The variable keeps its column (coefficient zeroed). Returns false on
  /// arithmetic overflow.
  bool substitute(unsigned Var, T Value);

  /// Debug rendering.
  std::string str() const;

private:
  unsigned NumVars;
  std::vector<LinearConstraintT<T>> Constraints;
};

/// The 64-bit fast-path instantiations (the historical names).
using LinearConstraint = LinearConstraintT<int64_t>;
using LinearSystem = LinearSystemT<int64_t>;
/// The 128-bit widened-retry instantiations.
using WideConstraint = LinearConstraintT<Int128>;
using WideSystem = LinearSystemT<Int128>;

/// Widens every coefficient and bound of a 64-bit system; total.
WideSystem widenSystem(const LinearSystem &S);

} // namespace edda

#endif // EDDA_DEPTEST_LINEARSYSTEM_H
