//===- deptest/LinearSystem.h - Inequality systems over t ------*- C++ -*-===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// After extended-GCD preprocessing all the tests work on one shape of
/// input (a deliberate property the paper calls out in section 7): a
/// conjunction of integer linear inequalities  sum_k C_k * t_k <= B  over
/// the free variables t left by the GCD substitution. LinearSystem is
/// that conjunction.
///
//===----------------------------------------------------------------------===//

#ifndef EDDA_DEPTEST_LINEARSYSTEM_H
#define EDDA_DEPTEST_LINEARSYSTEM_H

#include <cassert>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace edda {

/// One inequality: sum_k Coeffs[k] * t_k <= Bound. Coeffs is dense with
/// exactly the system's variable count.
struct LinearConstraint {
  std::vector<int64_t> Coeffs;
  int64_t Bound = 0;

  LinearConstraint() = default;
  LinearConstraint(std::vector<int64_t> Coeffs, int64_t Bound)
      : Coeffs(std::move(Coeffs)), Bound(Bound) {}

  /// Number of variables with nonzero coefficient.
  unsigned numActiveVars() const;

  /// Index of the single active variable. \pre numActiveVars() == 1.
  unsigned soleVar() const;

  /// Evaluates the left-hand side at \p Point; std::nullopt on overflow.
  std::optional<int64_t> lhsAt(const std::vector<int64_t> &Point) const;

  /// True when \p Point satisfies the constraint (overflow counts as
  /// unsatisfied).
  bool satisfiedBy(const std::vector<int64_t> &Point) const;

  /// Divides through by the gcd of the coefficients, flooring the bound —
  /// valid (and tightening) over the integers. No-op for constant
  /// constraints. Returns false when the constraint is a constant
  /// falsehood 0 <= Bound with Bound < 0.
  bool normalize();

  bool operator==(const LinearConstraint &RHS) const = default;
};

/// A conjunction of linear constraints over NumVars integer unknowns.
class LinearSystem {
public:
  explicit LinearSystem(unsigned NumVars) : NumVars(NumVars) {}

  unsigned numVars() const { return NumVars; }

  const std::vector<LinearConstraint> &constraints() const {
    return Constraints;
  }
  std::vector<LinearConstraint> &constraints() { return Constraints; }

  /// Appends a constraint. \pre Coeffs.size() == numVars().
  void add(LinearConstraint C) {
    assert(C.Coeffs.size() == NumVars && "constraint arity mismatch");
    Constraints.push_back(std::move(C));
  }

  /// Convenience: adds sum Coeffs*t <= Bound.
  void addLe(std::vector<int64_t> Coeffs, int64_t Bound) {
    add(LinearConstraint(std::move(Coeffs), Bound));
  }

  /// True when \p Point satisfies every constraint.
  bool satisfiedBy(const std::vector<int64_t> &Point) const;

  /// Replaces t_Var with the constant \p Value in every constraint.
  /// The variable keeps its column (coefficient zeroed). Returns false on
  /// arithmetic overflow.
  bool substitute(unsigned Var, int64_t Value);

  /// Debug rendering.
  std::string str() const;

private:
  unsigned NumVars;
  std::vector<LinearConstraint> Constraints;
};

} // namespace edda

#endif // EDDA_DEPTEST_LINEARSYSTEM_H
