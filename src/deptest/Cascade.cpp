//===- deptest/Cascade.cpp - Cascaded exact dependence testing ------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "deptest/Cascade.h"

#include "deptest/Acyclic.h"
#include "deptest/ExtendedGcd.h"
#include "deptest/LoopResidue.h"
#include "deptest/Svpc.h"
#include "support/IntMath.h"

using namespace edda;

namespace {

CascadeResult decide(DepAnswer Answer, TestKind Kind, DepStats *Stats) {
  if (Stats)
    Stats->recordDecision(Kind, Answer == DepAnswer::Independent);
  CascadeResult Result;
  Result.Answer = Answer;
  Result.DecidedBy = Kind;
  Result.Exact = Answer != DepAnswer::Unknown;
  return Result;
}

/// Maps a t-space witness back to x space, discarding it on overflow
/// (the qualitative answer remains exact).
void attachWitness(CascadeResult &Result, const DiophantineSolution &Sol,
                   const std::vector<int64_t> &TSample) {
  Result.Witness = Sol.instantiate(TSample);
}

} // namespace

bool edda::verifyWitness(const DependenceProblem &Problem,
                         const std::vector<int64_t> &X,
                         const std::vector<XAffine> &ExtraLe0) {
  if (X.size() != Problem.numX())
    return false;
  auto Eval = [&X](const XAffine &Form) -> std::optional<int64_t> {
    CheckedInt Sum(Form.Const);
    for (unsigned J = 0; J < Form.Coeffs.size(); ++J)
      if (Form.Coeffs[J] != 0)
        Sum += CheckedInt(Form.Coeffs[J]) * X[J];
    return Sum.getOpt();
  };
  for (const XAffine &Eq : Problem.Equations) {
    std::optional<int64_t> V = Eval(Eq);
    if (!V || *V != 0)
      return false;
  }
  for (unsigned L = 0; L < Problem.numLoopVars(); ++L) {
    if (Problem.Lo[L]) {
      std::optional<int64_t> V = Eval(*Problem.Lo[L]);
      if (!V || *V > X[L])
        return false;
    }
    if (Problem.Hi[L]) {
      std::optional<int64_t> V = Eval(*Problem.Hi[L]);
      if (!V || *V < X[L])
        return false;
    }
  }
  for (const XAffine &Form : ExtraLe0) {
    std::optional<int64_t> V = Eval(Form);
    if (!V || *V > 0)
      return false;
  }
  return true;
}

CascadeResult edda::testDependence(const DependenceProblem &Problem,
                                   const CascadeOptions &Opts,
                                   DepStats *Stats) {
  return testDependenceConstrained(Problem, {}, Opts, Stats);
}

CascadeResult
edda::testDependenceConstrained(const DependenceProblem &Problem,
                                const std::vector<XAffine> &ExtraLe0,
                                const CascadeOptions &Opts,
                                DepStats *Stats) {
  assert(Problem.wellFormed() && "malformed problem");
  if (Stats)
    ++Stats->Queries;

  // Step 0: array constants (paper Table 1, first column). When every
  // subscript equation is constant there is nothing to test: a nonzero
  // constant can never equal zero, and all-zero equations depend only on
  // the loops being non-empty.
  bool AllConstant = true;
  for (const XAffine &Eq : Problem.Equations) {
    if (!Eq.isConstant()) {
      AllConstant = false;
      continue;
    }
    if (Eq.Const != 0)
      return decide(DepAnswer::Independent, TestKind::ArrayConstant,
                    Stats);
  }
  if (AllConstant && ExtraLe0.empty()) {
    // Detect constant-bound empty loops exactly; otherwise follow the
    // paper and assume enclosing loops execute.
    for (unsigned L = 0; L < Problem.numLoopVars(); ++L) {
      if (Problem.Lo[L] && Problem.Hi[L] && Problem.Lo[L]->isConstant() &&
          Problem.Hi[L]->isConstant() &&
          Problem.Lo[L]->Const > Problem.Hi[L]->Const)
        return decide(DepAnswer::Independent, TestKind::ArrayConstant,
                      Stats);
    }
    if (Opts.AssumeNonEmptyLoops) {
      CascadeResult Result = decide(DepAnswer::Dependent,
                                    TestKind::ArrayConstant, Stats);
      return Result;
    }
    // Fall through to the full cascade to decide bounds feasibility.
  }

  // Step 1: extended GCD preprocessing.
  DiophantineSolution Sol = solveEquations(Problem);
  if (Sol.Overflow)
    return decide(DepAnswer::Unknown, TestKind::Unanalyzable, Stats);
  if (!Sol.Solvable)
    return decide(DepAnswer::Independent, TestKind::GcdTest, Stats);

  // Step 2: rewrite the bound constraints (and any direction-vector
  // constraints) over the free variables.
  std::optional<LinearSystem> MaybeSystem =
      boundsToFreeSpace(Problem, Sol);
  if (!MaybeSystem)
    return decide(DepAnswer::Unknown, TestKind::Unanalyzable, Stats);
  LinearSystem System = std::move(*MaybeSystem);
  for (const XAffine &Form : ExtraLe0) {
    std::vector<int64_t> TCoeffs;
    int64_t TConst;
    if (!projectToFree(Form, Sol, TCoeffs, TConst))
      return decide(DepAnswer::Unknown, TestKind::Unanalyzable, Stats);
    std::optional<int64_t> Bound = checkedNeg(TConst);
    if (!Bound)
      return decide(DepAnswer::Unknown, TestKind::Unanalyzable, Stats);
    System.addLe(std::move(TCoeffs), *Bound);
  }

  // Step 3: SVPC.
  SvpcResult Svpc = runSvpc(System);
  if (Svpc.St == SvpcResult::Status::Independent)
    return decide(DepAnswer::Independent, TestKind::Svpc, Stats);
  if (Svpc.St == SvpcResult::Status::Dependent) {
    CascadeResult Result =
        decide(DepAnswer::Dependent, TestKind::Svpc, Stats);
    if (Svpc.Sample)
      attachWitness(Result, Sol, *Svpc.Sample);
    return Result;
  }

  // Step 4: Acyclic.
  AcyclicResult Acyc =
      runAcyclic(System.numVars(), Svpc.MultiVar, Svpc.Intervals);
  if (Acyc.St == AcyclicResult::Status::Independent)
    return decide(DepAnswer::Independent, TestKind::Acyclic, Stats);
  if (Acyc.St == AcyclicResult::Status::Dependent) {
    CascadeResult Result =
        decide(DepAnswer::Dependent, TestKind::Acyclic, Stats);
    if (Acyc.Sample)
      attachWitness(Result, Sol, *Acyc.Sample);
    return Result;
  }

  // Step 5: Loop Residue on the cyclic core (skipped if Acyclic
  // overflowed, since its simplified state is then unusable).
  if (Acyc.St == AcyclicResult::Status::NeedsMore) {
    ResidueResult Residue = runLoopResidue(System.numVars(),
                                           Acyc.Remaining, Acyc.Intervals);
    if (Residue.St == ResidueResult::Status::Independent)
      return decide(DepAnswer::Independent, TestKind::LoopResidue, Stats);
    if (Residue.St == ResidueResult::Status::Dependent) {
      CascadeResult Result =
          decide(DepAnswer::Dependent, TestKind::LoopResidue, Stats);
      if (Residue.Sample) {
        std::vector<int64_t> TSample = std::move(*Residue.Sample);
        if (completeSample(TSample, Acyc.Log, Acyc.Intervals))
          attachWitness(Result, Sol, TSample);
      }
      return Result;
    }
    // NotApplicable / Overflow: fall through to Fourier-Motzkin.
  }

  // Step 6: backup Fourier-Motzkin on the full t-space system.
  FmResult Fm = runFourierMotzkin(System, Opts.Fm);
  if (Fm.St == FmResult::Status::Independent)
    return decide(DepAnswer::Independent, TestKind::FourierMotzkin, Stats);
  if (Fm.St == FmResult::Status::Dependent) {
    CascadeResult Result =
        decide(DepAnswer::Dependent, TestKind::FourierMotzkin, Stats);
    if (Fm.Sample)
      attachWitness(Result, Sol, *Fm.Sample);
    return Result;
  }
  CascadeResult Result =
      decide(DepAnswer::Unknown, TestKind::FourierMotzkin, Stats);
  Result.Exact = false;
  return Result;
}
