//===- deptest/Cascade.cpp - Cascaded exact dependence testing ------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
//
// The cascade proper lives in TestPipeline.cpp, where each of the
// paper's tests is a registered pipeline stage; these entry points keep
// the original call signature and run whichever pipeline the options
// select (the default pipeline reproduces the hard-wired cascade
// bit for bit).
//
//===----------------------------------------------------------------------===//

#include "deptest/Cascade.h"

#include "deptest/TestPipeline.h"
#include "support/IntMath.h"

using namespace edda;

bool edda::verifyWitness(const DependenceProblem &Problem,
                         const std::vector<int64_t> &X,
                         const std::vector<XAffine> &ExtraLe0) {
  if (X.size() != Problem.numX())
    return false;
  auto Eval = [&X](const XAffine &Form) -> std::optional<int64_t> {
    CheckedInt Sum(Form.Const);
    for (unsigned J = 0; J < Form.Coeffs.size(); ++J)
      if (Form.Coeffs[J] != 0)
        Sum += CheckedInt(Form.Coeffs[J]) * X[J];
    return Sum.getOpt();
  };
  for (const XAffine &Eq : Problem.Equations) {
    std::optional<int64_t> V = Eval(Eq);
    if (!V || *V != 0)
      return false;
  }
  for (unsigned L = 0; L < Problem.numLoopVars(); ++L) {
    if (Problem.Lo[L]) {
      std::optional<int64_t> V = Eval(*Problem.Lo[L]);
      if (!V || *V > X[L])
        return false;
    }
    if (Problem.Hi[L]) {
      std::optional<int64_t> V = Eval(*Problem.Hi[L]);
      if (!V || *V < X[L])
        return false;
    }
  }
  for (const XAffine &Form : ExtraLe0) {
    std::optional<int64_t> V = Eval(Form);
    if (!V || *V > 0)
      return false;
  }
  return true;
}

CascadeResult edda::testDependence(const DependenceProblem &Problem,
                                   const CascadeOptions &Opts,
                                   DepStats *Stats) {
  return testDependenceConstrained(Problem, {}, Opts, Stats);
}

CascadeResult
edda::testDependenceConstrained(const DependenceProblem &Problem,
                                const std::vector<XAffine> &ExtraLe0,
                                const CascadeOptions &Opts,
                                DepStats *Stats) {
  const TestPipeline &Pipeline =
      Opts.Pipeline ? *Opts.Pipeline : TestPipeline::defaultPipeline();
  return Pipeline.run(Problem, ExtraLe0, Opts, Stats);
}
