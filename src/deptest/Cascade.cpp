//===- deptest/Cascade.cpp - Cascaded exact dependence testing ------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
//
// The cascade proper lives in TestPipeline.cpp, where each of the
// paper's tests is a registered pipeline stage; these entry points keep
// the original call signature and run whichever pipeline the options
// select (the default pipeline reproduces the hard-wired cascade
// bit for bit).
//
//===----------------------------------------------------------------------===//

#include "deptest/Cascade.h"

#include "deptest/TestPipeline.h"
#include "support/IntMath.h"
#include "support/WideInt.h"

using namespace edda;

bool edda::verifyWitness(const DependenceProblem &Problem,
                         const std::vector<int64_t> &X,
                         const std::vector<XAffine> &ExtraLe0) {
  if (X.size() != Problem.numX())
    return false;
  // Residuals are evaluated at 128 bits: a widened decision can hand
  // back a witness whose components fit int64 while the intermediate
  // coefficient products do not, and verification must not reject an
  // exact answer over its own arithmetic. (The checked accumulator
  // still guards the astronomically long sums that could exceed even
  // 128 bits.)
  auto Eval = [&X](const XAffine &Form) -> std::optional<Int128> {
    Checked<Int128> Sum{Int128(Form.Const)};
    for (unsigned J = 0; J < Form.Coeffs.size(); ++J)
      if (Form.Coeffs[J] != 0)
        Sum += Checked<Int128>(Int128(Form.Coeffs[J])) * Int128(X[J]);
    return Sum.getOpt();
  };
  for (const XAffine &Eq : Problem.Equations) {
    std::optional<Int128> V = Eval(Eq);
    if (!V || *V != Int128(0))
      return false;
  }
  for (unsigned L = 0; L < Problem.numLoopVars(); ++L) {
    if (Problem.Lo[L]) {
      std::optional<Int128> V = Eval(*Problem.Lo[L]);
      if (!V || *V > Int128(X[L]))
        return false;
    }
    if (Problem.Hi[L]) {
      std::optional<Int128> V = Eval(*Problem.Hi[L]);
      if (!V || *V < Int128(X[L]))
        return false;
    }
  }
  for (const XAffine &Form : ExtraLe0) {
    std::optional<Int128> V = Eval(Form);
    if (!V || *V > Int128(0))
      return false;
  }
  return true;
}

CascadeResult edda::testDependence(const DependenceProblem &Problem,
                                   const CascadeOptions &Opts,
                                   DepStats *Stats) {
  return testDependenceConstrained(Problem, {}, Opts, Stats);
}

CascadeResult
edda::testDependenceConstrained(const DependenceProblem &Problem,
                                const std::vector<XAffine> &ExtraLe0,
                                const CascadeOptions &Opts,
                                DepStats *Stats) {
  const TestPipeline &Pipeline =
      Opts.Pipeline ? *Opts.Pipeline : TestPipeline::defaultPipeline();
  return Pipeline.run(Problem, ExtraLe0, Opts, Stats);
}
