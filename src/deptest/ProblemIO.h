//===- deptest/ProblemIO.h - Textual dependence problems -------*- C++ -*-===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small textual format for DependenceProblem values, so the decision
/// procedures can be driven without the compiler layers (edda-cli
/// --problem, regression corpora, bug reports). Example:
///
/// \code
///   # a[i+10] = a[i] over i = 1..10
///   problem
///     loops 1 1 common 1 symbolic 0
///     eq   1 -1 = -10
///     lo 0 : 1
///     hi 0 : 10
///     lo 1 : 1
///     hi 1 : 10
///   end
/// \endcode
///
/// `eq` lines give the numX coefficients and the constant of one
/// equation (form + const == 0, written after '='). `lo`/`hi` lines
/// give a loop variable index, then either `: c` for a constant bound
/// or the numX coefficients and `: c` for an affine one. Omitted bounds
/// are unknown. '#' starts a comment.
///
//===----------------------------------------------------------------------===//

#ifndef EDDA_DEPTEST_PROBLEMIO_H
#define EDDA_DEPTEST_PROBLEMIO_H

#include "deptest/Problem.h"

#include <optional>
#include <string>
#include <string_view>

namespace edda {

/// Outcome of parsing a problem file.
struct ProblemParseResult {
  std::optional<DependenceProblem> Problem;
  std::string Error; ///< Set when Problem is empty.

  bool succeeded() const { return Problem.has_value(); }
};

/// Parses the textual format described in the file comment.
ProblemParseResult parseProblemText(std::string_view Text);

/// Renders \p P in the same format (parseProblemText round-trips it).
std::string printProblemText(const DependenceProblem &P);

} // namespace edda

#endif // EDDA_DEPTEST_PROBLEMIO_H
