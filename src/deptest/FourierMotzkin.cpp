//===- deptest/FourierMotzkin.cpp - Fourier-Motzkin backup test -----------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "deptest/FourierMotzkin.h"

#include "support/IntMath.h"

#include <algorithm>
#include <set>

using namespace edda;

namespace {

/// One elimination step: the variable removed and the bounds involving
/// it, kept for back substitution.
struct ElimStep {
  unsigned Var;
  std::vector<LinearConstraint> Uppers; ///< Coefficient of Var > 0.
  std::vector<LinearConstraint> Lowers; ///< Coefficient of Var < 0.
};

/// Recursive solver carrying the shared branch budget.
class FmSolver {
public:
  FmSolver(const FourierMotzkinOptions &Opts) : Opts(Opts) {}

  FmResult solve(const LinearSystem &System) {
    FmResult Result = attempt(System);
    Result.UsedBranchAndBound = NodesUsed > 0;
    Result.BranchNodes = NodesUsed;
    return Result;
  }

private:
  const FourierMotzkinOptions &Opts;
  unsigned NodesUsed = 0;

  FmResult attempt(const LinearSystem &System);
};

/// Combines an upper bound (A > 0 on Var) with a lower bound (C < 0 on
/// Var): (-C)*Upper + A*Lower, whose Var column cancels. Returns false on
/// overflow.
bool combine(const LinearConstraint &Upper, const LinearConstraint &Lower,
             unsigned Var, LinearConstraint &Out) {
  int64_t A = Upper.Coeffs[Var];
  int64_t C = Lower.Coeffs[Var];
  assert(A > 0 && C < 0 && "combine requires opposite signs");
  std::optional<int64_t> NegC = checkedNeg(C);
  if (!NegC)
    return false;
  const unsigned NumVars = static_cast<unsigned>(Upper.Coeffs.size());
  Out.Coeffs.assign(NumVars, 0);
  for (unsigned K = 0; K < NumVars; ++K) {
    CheckedInt V = CheckedInt(*NegC) * Upper.Coeffs[K] +
                   CheckedInt(A) * Lower.Coeffs[K];
    if (!V.valid())
      return false;
    Out.Coeffs[K] = V.get();
  }
  assert(Out.Coeffs[Var] == 0 && "variable failed to cancel");
  CheckedInt B = CheckedInt(*NegC) * Upper.Bound + CheckedInt(A) *
                                                       Lower.Bound;
  if (!B.valid())
    return false;
  Out.Bound = B.get();
  return true;
}

FmResult FmSolver::attempt(const LinearSystem &System) {
  FmResult Result;
  const unsigned NumVars = System.numVars();

  // Working set, gcd-normalized; constant contradictions end early.
  std::vector<LinearConstraint> Work;
  for (const LinearConstraint &C : System.constraints()) {
    LinearConstraint Copy = C;
    if (!Copy.normalize()) {
      Result.St = FmResult::Status::Independent;
      return Result;
    }
    if (Copy.numActiveVars() > 0)
      Work.push_back(std::move(Copy));
  }

  std::vector<bool> Eliminated(NumVars, false);
  std::vector<ElimStep> Steps;
  Steps.reserve(NumVars);

  for (unsigned Round = 0; Round < NumVars; ++Round) {
    // Pick the remaining variable with the smallest pairing growth
    // p*q (classic least-fill heuristic).
    unsigned BestVar = 0;
    uint64_t BestCost = UINT64_MAX;
    for (unsigned V = 0; V < NumVars; ++V) {
      if (Eliminated[V])
        continue;
      uint64_t P = 0, Q = 0;
      for (const LinearConstraint &C : Work) {
        if (C.Coeffs[V] > 0)
          ++P;
        else if (C.Coeffs[V] < 0)
          ++Q;
      }
      uint64_t Cost = P * Q;
      if (Cost < BestCost) {
        BestCost = Cost;
        BestVar = V;
      }
    }

    ElimStep Step;
    Step.Var = BestVar;
    std::vector<LinearConstraint> Rest;
    for (LinearConstraint &C : Work) {
      if (C.Coeffs[BestVar] > 0)
        Step.Uppers.push_back(std::move(C));
      else if (C.Coeffs[BestVar] < 0)
        Step.Lowers.push_back(std::move(C));
      else
        Rest.push_back(std::move(C));
    }

    // All upper x lower pairs; dedupe to tame quadratic blowup.
    std::set<std::pair<std::vector<int64_t>, int64_t>> Seen;
    for (const LinearConstraint &R : Rest)
      Seen.insert({R.Coeffs, R.Bound});
    for (const LinearConstraint &U : Step.Uppers) {
      for (const LinearConstraint &L : Step.Lowers) {
        LinearConstraint Derived;
        if (!combine(U, L, BestVar, Derived)) {
          Result.St = FmResult::Status::Unknown;
          return Result;
        }
        if (!Derived.normalize()) {
          // Constant falsehood: the tightened system (equisatisfiable
          // over the integers) is infeasible.
          Result.St = FmResult::Status::Independent;
          return Result;
        }
        if (Derived.numActiveVars() == 0)
          continue; // tautology
        if (Seen.insert({Derived.Coeffs, Derived.Bound}).second)
          Rest.push_back(std::move(Derived));
        if (Rest.size() > Opts.MaxConstraints) {
          Result.St = FmResult::Status::Unknown;
          return Result;
        }
      }
    }
    Work = std::move(Rest);
    Eliminated[BestVar] = true;
    Steps.push_back(std::move(Step));
  }
  assert(Work.empty() && "constraints left after eliminating all vars");

  // Real-feasible. Back-substitute in reverse elimination order; the
  // first step's range is constant, so an empty integer range there is
  // exact independence (paper's special case).
  std::vector<int64_t> Sample(NumVars, 0);
  bool AnyAssigned = false;
  for (auto It = Steps.rbegin(); It != Steps.rend(); ++It) {
    const ElimStep &Step = *It;
    std::optional<int64_t> Lo, Hi;
    for (const LinearConstraint &U : Step.Uppers) {
      // a*v <= Bound - sum others.
      CheckedInt Rhs(U.Bound);
      for (unsigned K = 0; K < NumVars; ++K)
        if (K != Step.Var && U.Coeffs[K] != 0)
          Rhs -= CheckedInt(U.Coeffs[K]) * Sample[K];
      if (!Rhs.valid()) {
        Result.St = FmResult::Status::Unknown;
        return Result;
      }
      int64_t Limit = floorDiv(Rhs.get(), U.Coeffs[Step.Var]);
      Hi = Hi ? std::min(*Hi, Limit) : Limit;
    }
    for (const LinearConstraint &L : Step.Lowers) {
      CheckedInt Rhs(L.Bound);
      for (unsigned K = 0; K < NumVars; ++K)
        if (K != Step.Var && L.Coeffs[K] != 0)
          Rhs -= CheckedInt(L.Coeffs[K]) * Sample[K];
      if (!Rhs.valid()) {
        Result.St = FmResult::Status::Unknown;
        return Result;
      }
      int64_t Limit = ceilDiv(Rhs.get(), L.Coeffs[Step.Var]);
      Lo = Lo ? std::max(*Lo, Limit) : Limit;
    }

    if (Lo && Hi && *Lo > *Hi) {
      if (!AnyAssigned) {
        // No choices were made yet, so the empty range is unconditional.
        Result.St = FmResult::Status::Independent;
        return Result;
      }
      // Branch & bound: any integer point has v <= Hi or v >= Hi + 1.
      if (Opts.MaxBranchNodes == 0 ||
          NodesUsed + 2 > Opts.MaxBranchNodes) {
        Result.St = FmResult::Status::Unknown;
        return Result;
      }
      NodesUsed += 2;
      std::optional<int64_t> SplitLo = checkedAdd(*Hi, 1);
      if (!SplitLo) {
        Result.St = FmResult::Status::Unknown;
        return Result;
      }
      LinearSystem Left(System);
      std::vector<int64_t> Row(NumVars, 0);
      Row[Step.Var] = 1;
      Left.addLe(Row, *Hi); // v <= Hi
      FmResult LeftResult = attempt(Left);
      if (LeftResult.St == FmResult::Status::Dependent)
        return LeftResult;

      LinearSystem Right(System);
      Row.assign(NumVars, 0);
      Row[Step.Var] = -1;
      std::optional<int64_t> NegSplit = checkedNeg(*SplitLo);
      if (!NegSplit) {
        Result.St = FmResult::Status::Unknown;
        return Result;
      }
      Right.addLe(Row, *NegSplit); // v >= Hi + 1
      FmResult RightResult = attempt(Right);
      if (RightResult.St == FmResult::Status::Dependent)
        return RightResult;
      if (LeftResult.St == FmResult::Status::Unknown ||
          RightResult.St == FmResult::Status::Unknown) {
        Result.St = FmResult::Status::Unknown;
        return Result;
      }
      Result.St = FmResult::Status::Independent;
      return Result;
    }

    // Middle of the allowed range (paper's heuristic), or the finite
    // endpoint, or 0 when fully unconstrained.
    int64_t Value = 0;
    if (Lo && Hi)
      Value = *Lo + (*Hi - *Lo) / 2;
    else if (Lo)
      Value = *Lo;
    else if (Hi)
      Value = *Hi;
    Sample[Step.Var] = Value;
    AnyAssigned = true;
  }

  assert(System.satisfiedBy(Sample) && "witness fails the system");
  Result.St = FmResult::Status::Dependent;
  Result.Sample = std::move(Sample);
  return Result;
}

} // namespace

FmResult edda::runFourierMotzkin(const LinearSystem &System,
                                 const FourierMotzkinOptions &Opts) {
  return FmSolver(Opts).solve(System);
}
