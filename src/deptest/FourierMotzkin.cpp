//===- deptest/FourierMotzkin.cpp - Fourier-Motzkin backup test -----------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "deptest/FourierMotzkin.h"

#include "support/WideInt.h"

#include <algorithm>
#include <set>

using namespace edda;

namespace {

/// One elimination step: the variable removed and the bounds involving
/// it, kept for back substitution.
template <typename T> struct ElimStep {
  unsigned Var;
  std::vector<LinearConstraintT<T>> Uppers; ///< Coefficient of Var > 0.
  std::vector<LinearConstraintT<T>> Lowers; ///< Coefficient of Var < 0.
};

/// Recursive solver carrying the shared branch budget.
template <typename T> class FmSolver {
public:
  FmSolver(const FourierMotzkinOptions &Opts) : Opts(Opts) {}

  FmResultT<T> solve(const LinearSystemT<T> &System) {
    FmResultT<T> Result = attempt(System);
    Result.UsedBranchAndBound = NodesUsed > 0;
    Result.BranchNodes = NodesUsed;
    Result.Combines = CombinesUsed;
    return Result;
  }

private:
  const FourierMotzkinOptions &Opts;
  unsigned NodesUsed = 0;
  uint64_t CombinesUsed = 0;

  FmResultT<T> attempt(const LinearSystemT<T> &System);

  FmResultT<T> unknown(bool Overflowed) {
    FmResultT<T> Result;
    Result.St = FmResultT<T>::Status::Unknown;
    Result.Overflowed = Overflowed;
    return Result;
  }
};

/// Combines an upper bound (A > 0 on Var) with a lower bound (C < 0 on
/// Var): (-C)*Upper + A*Lower, whose Var column cancels. Returns false on
/// overflow.
template <typename T>
bool combine(const LinearConstraintT<T> &Upper,
             const LinearConstraintT<T> &Lower, unsigned Var,
             LinearConstraintT<T> &Out) {
  T A = Upper.Coeffs[Var];
  T C = Lower.Coeffs[Var];
  assert(A > T(0) && C < T(0) && "combine requires opposite signs");
  std::optional<T> NegC = checkedNeg(C);
  if (!NegC)
    return false;
  const unsigned NumVars = static_cast<unsigned>(Upper.Coeffs.size());
  Out.Coeffs.assign(NumVars, T(0));
  for (unsigned K = 0; K < NumVars; ++K) {
    Checked<T> V = Checked<T>(*NegC) * Upper.Coeffs[K] +
                   Checked<T>(A) * Lower.Coeffs[K];
    if (!V.valid())
      return false;
    Out.Coeffs[K] = V.get();
  }
  assert(Out.Coeffs[Var] == T(0) && "variable failed to cancel");
  Checked<T> B =
      Checked<T>(*NegC) * Upper.Bound + Checked<T>(A) * Lower.Bound;
  if (!B.valid())
    return false;
  Out.Bound = B.get();
  return true;
}

template <typename T>
FmResultT<T> FmSolver<T>::attempt(const LinearSystemT<T> &System) {
  FmResultT<T> Result;
  const unsigned NumVars = System.numVars();

  // Working set, gcd-normalized; constant contradictions end early.
  std::vector<LinearConstraintT<T>> Work;
  for (const LinearConstraintT<T> &C : System.constraints()) {
    LinearConstraintT<T> Copy = C;
    if (!Copy.normalize()) {
      Result.St = FmResultT<T>::Status::Independent;
      return Result;
    }
    if (Copy.numActiveVars() > 0)
      Work.push_back(std::move(Copy));
  }

  std::vector<bool> Eliminated(NumVars, false);
  std::vector<ElimStep<T>> Steps;
  Steps.reserve(NumVars);

  for (unsigned Round = 0; Round < NumVars; ++Round) {
    // Pick the remaining variable with the smallest pairing growth
    // p*q (classic least-fill heuristic).
    unsigned BestVar = 0;
    uint64_t BestCost = UINT64_MAX;
    for (unsigned V = 0; V < NumVars; ++V) {
      if (Eliminated[V])
        continue;
      uint64_t P = 0, Q = 0;
      for (const LinearConstraintT<T> &C : Work) {
        if (C.Coeffs[V] > T(0))
          ++P;
        else if (C.Coeffs[V] < T(0))
          ++Q;
      }
      uint64_t Cost = P * Q;
      if (Cost < BestCost) {
        BestCost = Cost;
        BestVar = V;
      }
    }

    ElimStep<T> Step;
    Step.Var = BestVar;
    std::vector<LinearConstraintT<T>> Rest;
    for (LinearConstraintT<T> &C : Work) {
      if (C.Coeffs[BestVar] > T(0))
        Step.Uppers.push_back(std::move(C));
      else if (C.Coeffs[BestVar] < T(0))
        Step.Lowers.push_back(std::move(C));
      else
        Rest.push_back(std::move(C));
    }

    // All upper x lower pairs; dedupe to tame quadratic blowup.
    std::set<std::pair<std::vector<T>, T>> Seen;
    for (const LinearConstraintT<T> &R : Rest)
      Seen.insert({R.Coeffs, R.Bound});
    for (const LinearConstraintT<T> &U : Step.Uppers) {
      for (const LinearConstraintT<T> &L : Step.Lowers) {
        ++CombinesUsed;
        if (Opts.MaxCombines != 0 && CombinesUsed > Opts.MaxCombines)
          return unknown(/*Overflowed=*/false);
        LinearConstraintT<T> Derived;
        if (!combine(U, L, BestVar, Derived))
          return unknown(/*Overflowed=*/true);
        if (!Derived.normalize()) {
          // Constant falsehood: the tightened system (equisatisfiable
          // over the integers) is infeasible.
          Result.St = FmResultT<T>::Status::Independent;
          return Result;
        }
        if (Derived.numActiveVars() == 0)
          continue; // tautology
        if (Seen.insert({Derived.Coeffs, Derived.Bound}).second)
          Rest.push_back(std::move(Derived));
        if (Rest.size() > Opts.MaxConstraints)
          return unknown(/*Overflowed=*/false);
      }
    }
    Work = std::move(Rest);
    Eliminated[BestVar] = true;
    Steps.push_back(std::move(Step));
  }
  assert(Work.empty() && "constraints left after eliminating all vars");

  // Real-feasible. Back-substitute in reverse elimination order; the
  // first step's range is constant, so an empty integer range there is
  // exact independence (paper's special case).
  std::vector<T> Sample(NumVars, T(0));
  bool AnyAssigned = false;
  for (auto It = Steps.rbegin(); It != Steps.rend(); ++It) {
    const ElimStep<T> &Step = *It;
    std::optional<T> Lo, Hi;
    for (const LinearConstraintT<T> &U : Step.Uppers) {
      // a*v <= Bound - sum others.
      Checked<T> Rhs(U.Bound);
      for (unsigned K = 0; K < NumVars; ++K)
        if (K != Step.Var && U.Coeffs[K] != T(0))
          Rhs -= Checked<T>(U.Coeffs[K]) * Sample[K];
      if (!Rhs.valid())
        return unknown(/*Overflowed=*/true);
      // The divisor is an arbitrary derived coefficient: checked.
      std::optional<T> Limit =
          checkedFloorDiv(Rhs.get(), U.Coeffs[Step.Var]);
      if (!Limit)
        return unknown(/*Overflowed=*/true);
      Hi = Hi ? std::min(*Hi, *Limit) : *Limit;
    }
    for (const LinearConstraintT<T> &L : Step.Lowers) {
      Checked<T> Rhs(L.Bound);
      for (unsigned K = 0; K < NumVars; ++K)
        if (K != Step.Var && L.Coeffs[K] != T(0))
          Rhs -= Checked<T>(L.Coeffs[K]) * Sample[K];
      if (!Rhs.valid())
        return unknown(/*Overflowed=*/true);
      std::optional<T> Limit =
          checkedCeilDiv(Rhs.get(), L.Coeffs[Step.Var]);
      if (!Limit)
        return unknown(/*Overflowed=*/true);
      Lo = Lo ? std::max(*Lo, *Limit) : *Limit;
    }

    if (Lo && Hi && *Lo > *Hi) {
      if (!AnyAssigned) {
        // No choices were made yet, so the empty range is unconditional.
        Result.St = FmResultT<T>::Status::Independent;
        return Result;
      }
      // Branch & bound: any integer point has v <= Hi or v >= Hi + 1.
      if (Opts.MaxBranchNodes == 0 || NodesUsed + 2 > Opts.MaxBranchNodes)
        return unknown(/*Overflowed=*/false);
      NodesUsed += 2;
      std::optional<T> SplitLo = checkedAdd(*Hi, T(1));
      if (!SplitLo)
        return unknown(/*Overflowed=*/true);
      LinearSystemT<T> Left(System);
      std::vector<T> Row(NumVars, T(0));
      Row[Step.Var] = T(1);
      Left.addLe(Row, *Hi); // v <= Hi
      FmResultT<T> LeftResult = attempt(Left);
      if (LeftResult.St == FmResultT<T>::Status::Dependent)
        return LeftResult;

      LinearSystemT<T> Right(System);
      Row.assign(NumVars, T(0));
      Row[Step.Var] = T(-1);
      std::optional<T> NegSplit = checkedNeg(*SplitLo);
      if (!NegSplit)
        return unknown(/*Overflowed=*/true);
      Right.addLe(Row, *NegSplit); // v >= Hi + 1
      FmResultT<T> RightResult = attempt(Right);
      if (RightResult.St == FmResultT<T>::Status::Dependent)
        return RightResult;
      if (LeftResult.St == FmResultT<T>::Status::Unknown ||
          RightResult.St == FmResultT<T>::Status::Unknown)
        return unknown(LeftResult.Overflowed || RightResult.Overflowed);
      Result.St = FmResultT<T>::Status::Independent;
      return Result;
    }

    // Middle of the allowed range (paper's heuristic), or the finite
    // endpoint, or 0 when fully unconstrained. The midpoint offset is
    // computed checked: Hi - Lo can span more than the scalar range.
    T Value(0);
    if (Lo && Hi) {
      std::optional<T> Span = checkedSub(*Hi, *Lo);
      if (Span) {
        Value = *Lo + *Span / T(2);
      } else {
        // Enormous range straddling zero; any interior point works.
        Value = T(0);
      }
    } else if (Lo) {
      Value = *Lo;
    } else if (Hi) {
      Value = *Hi;
    }
    Sample[Step.Var] = Value;
    AnyAssigned = true;
  }

  assert(System.satisfiedBy(Sample) && "witness fails the system");
  Result.St = FmResultT<T>::Status::Dependent;
  Result.Sample = std::move(Sample);
  return Result;
}

} // namespace

namespace edda {

template <typename T>
FmResultT<T> runFourierMotzkin(const LinearSystemT<T> &System,
                               const FourierMotzkinOptions &Opts) {
  return FmSolver<T>(Opts).solve(System);
}

template FmResultT<int64_t>
runFourierMotzkin(const LinearSystemT<int64_t> &,
                  const FourierMotzkinOptions &);
template FmResultT<Int128>
runFourierMotzkin(const LinearSystemT<Int128> &,
                  const FourierMotzkinOptions &);

} // namespace edda
