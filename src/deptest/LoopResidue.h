//===- deptest/LoopResidue.h - Simple Loop Residue test --------*- C++ -*-===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pratt's Simple Loop Residue test (paper section 3.4) with the paper's
/// exact extension to equal-magnitude coefficients: a*ti - a*tj <= c is
/// rewritten ti - tj <= floor(c/a). Single-variable bounds attach to the
/// distinguished node n0 (whose value is 0). A negative cycle in the
/// residue graph is the residue of a contradictory constraint chain, so
/// the system is infeasible; otherwise the shortest-path potentials are
/// an integral witness — difference-constraint systems are totally
/// unimodular, which is what makes this test exact.
///
/// Templated on the scalar type for the widening ladder: int64_t is the
/// fast path, Int128 the retry tier.
///
//===----------------------------------------------------------------------===//

#ifndef EDDA_DEPTEST_LOOPRESIDUE_H
#define EDDA_DEPTEST_LOOPRESIDUE_H

#include "deptest/Svpc.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace edda {

/// The residue graph: node v per variable plus the distinguished node n0
/// (index numVars). Edge u -> w with weight W encodes t_u <= t_w + W.
template <typename T> struct ResidueGraphT {
  struct Edge {
    unsigned From;
    unsigned To;
    T Weight;
  };
  unsigned NumNodes = 0; ///< Variables + 1 (n0 is node NumNodes - 1).
  std::vector<Edge> Edges;

  /// The cycle found by detection, as node ids, when one exists.
  std::string str() const;
};

/// Outcome of the Loop Residue test.
template <typename T> struct ResidueResultT {
  enum class Status {
    NotApplicable, ///< Some constraint is not a difference constraint.
    Independent,   ///< Negative cycle: exact.
    Dependent,     ///< No negative cycle: exact, with a witness.
    Overflow,      ///< Arithmetic gave up; widen or fall back.
  };

  Status St = Status::NotApplicable;
  /// Witness assignment (size numVars) when Dependent.
  std::optional<std::vector<T>> Sample;
  /// A negative cycle (sequence of node ids, first == last) when
  /// Independent, for diagnostics and the Figure 1 reproduction.
  std::vector<unsigned> NegativeCycle;
  /// The graph that was built (for diagnostics), valid unless
  /// NotApplicable was decided before construction finished.
  ResidueGraphT<T> Graph;
};

/// The 64-bit fast-path instantiations (the historical names).
using ResidueGraph = ResidueGraphT<int64_t>;
using ResidueResult = ResidueResultT<int64_t>;

/// Runs the Loop Residue test on the multi-variable constraints \p
/// MultiVar plus the single-variable \p Intervals over \p NumVars
/// variables. Applicable iff every multi-variable constraint has exactly
/// two active variables with coefficients +a and -a.
template <typename T>
ResidueResultT<T>
runLoopResidue(unsigned NumVars,
               const std::vector<LinearConstraintT<T>> &MultiVar,
               const VarIntervalsT<T> &Intervals);

} // namespace edda

#endif // EDDA_DEPTEST_LOOPRESIDUE_H
