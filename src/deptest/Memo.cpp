//===- deptest/Memo.cpp - Memoization of dependence tests -----------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "deptest/Memo.h"

#include "support/Hashing.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <unordered_set>

using namespace edda;

size_t DependenceCache::KeyHash::operator()(
    const std::vector<int64_t> &Key) const {
  uint64_t H = Kind == MemoHashKind::PaperLiteral ? paperHash(Key)
                                                  : hashVector(Key);
  return static_cast<size_t>(H);
}

namespace {

unsigned roundUpPow2(unsigned N) {
  unsigned P = 1;
  while (P < N && P < (1u << 16))
    P <<= 1;
  return P;
}

} // namespace

DependenceCache::DependenceCache(MemoOptions Opts) : Opts(Opts) {
  unsigned Count = roundUpPow2(std::max(1u, Opts.Shards));
  Shards.reserve(Count);
  for (unsigned I = 0; I < Count; ++I)
    Shards.push_back(std::make_unique<Shard>(Opts.Hash));
}

DependenceCache::Shard &DependenceCache::shardFor(const Key &K) {
  // Shard selection reuses the table's own memo hash; the per-shard
  // unordered_map re-hashes with the same function, which is harmless
  // (shard index uses the low bits as a prefix, the map the rest).
  uint64_t H = KeyHash{Opts.Hash}(K);
  return *Shards[H & (Shards.size() - 1)];
}

std::vector<int64_t>
DependenceCache::keyFor(const DependenceProblem &P, bool IncludeBounds,
                        bool &Swapped) const {
  Swapped = false;
  const DependenceProblem *Work = &P;
  DependenceProblem Reduced;
  if (Opts.ImprovedKey) {
    std::vector<std::optional<unsigned>> CommonMap;
    Reduced = P.withUnusedLoopsRemoved(CommonMap);
    Work = &Reduced;
  }
  DependenceProblem Sorted;
  if (Opts.CanonicalizeEquations) {
    Sorted = *Work;
    std::sort(Sorted.Equations.begin(), Sorted.Equations.end(),
              [](const XAffine &A, const XAffine &B) {
                if (A.Coeffs != B.Coeffs)
                  return A.Coeffs < B.Coeffs;
                return A.Const < B.Const;
              });
    Work = &Sorted;
  }
  std::vector<int64_t> Key = Work->serialize(IncludeBounds);
  if (Opts.SymmetricKey) {
    DependenceProblem SwappedProblem = Work->swapped();
    if (Opts.CanonicalizeEquations)
      std::sort(SwappedProblem.Equations.begin(),
                SwappedProblem.Equations.end(),
                [](const XAffine &A, const XAffine &B) {
                  if (A.Coeffs != B.Coeffs)
                    return A.Coeffs < B.Coeffs;
                  return A.Const < B.Const;
                });
    std::vector<int64_t> SwappedKey =
        SwappedProblem.serialize(IncludeBounds);
    if (SwappedKey < Key) {
      Key = std::move(SwappedKey);
      Swapped = true;
    }
  }
  return Key;
}

std::optional<CascadeResult>
DependenceCache::lookupFull(const DependenceProblem &P) {
  FullQueries.fetch_add(1, std::memory_order_relaxed);
  bool Swapped;
  Key K = keyFor(P, /*IncludeBounds=*/true, Swapped);
  Shard &S = shardFor(K);
  CascadeResult R;
  {
    std::lock_guard<std::mutex> Lock(S.Mutex);
    auto It = S.Full.find(K);
    if (It == S.Full.end())
      return std::nullopt;
    R = It->second;
    if (Opts.TrackRecency)
      S.FullUse[K] = UseTick.fetch_add(1, std::memory_order_relaxed);
  }
  FullHits.fetch_add(1, std::memory_order_relaxed);
  if (Swapped && R.Witness)
    R.Witness = swapWitness(*R.Witness, P.NumLoopsB, P.NumLoopsA);
  return R;
}

void DependenceCache::insertFull(const DependenceProblem &P,
                                 const CascadeResult &R, uint64_t Tag) {
  bool Swapped;
  Key K = keyFor(P, /*IncludeBounds=*/true, Swapped);
  CascadeResult Stored = R;
  if (Swapped && Stored.Witness)
    Stored.Witness = swapWitness(*Stored.Witness, P.NumLoopsA,
                                 P.NumLoopsB);
  // Improved-key witnesses live in the reduced x space; dropping them is
  // simpler than remembering the removal map and stays correct (the
  // qualitative answer is what the cache is for).
  if (Opts.ImprovedKey)
    Stored.Witness.reset();
  Shard &S = shardFor(K);
  std::lock_guard<std::mutex> Lock(S.Mutex);
  if (Opts.TrackRecency)
    S.FullUse[K] = UseTick.fetch_add(1, std::memory_order_relaxed);
  // emplace keeps the first entry on a duplicate key, so concurrent
  // inserters of the same problem converge on one canonical entry. The
  // tag follows the same discipline: it labels the entry that won.
  auto Res = S.Full.emplace(std::move(K), std::move(Stored));
  if (Res.second && Tag != 0)
    S.FullTag.emplace(Res.first->first, Tag);
}

std::optional<DirectionResult>
DependenceCache::lookupDirections(const DependenceProblem &P) {
  DirQueries.fetch_add(1, std::memory_order_relaxed);
  bool Swapped;
  Key K = keyFor(P, /*IncludeBounds=*/true, Swapped);
  Shard &S = shardFor(K);
  DirectionResult R;
  {
    std::lock_guard<std::mutex> Lock(S.Mutex);
    auto It = S.Directions.find(K);
    if (It == S.Directions.end())
      return std::nullopt;
    R = It->second;
    if (Opts.TrackRecency)
      S.DirUse[K] = UseTick.fetch_add(1, std::memory_order_relaxed);
  }
  DirHits.fetch_add(1, std::memory_order_relaxed);
  if (Swapped)
    R = reverseDirections(R);
  if (!Opts.ImprovedKey)
    return R;
  // Improved-key entries are stored in the reduced problem's common-loop
  // coordinates; expand to this caller's loops, '*' for removed ones.
  std::vector<std::optional<unsigned>> CommonMap;
  (void)P.withUnusedLoopsRemoved(CommonMap);
  DirectionResult Expanded = R;
  Expanded.Distances.assign(P.NumCommon, std::nullopt);
  Expanded.Vectors.clear();
  for (unsigned C = 0; C < P.NumCommon; ++C)
    if (CommonMap[C] && *CommonMap[C] < R.Distances.size())
      Expanded.Distances[C] = R.Distances[*CommonMap[C]];
  for (const DirVector &V : R.Vectors) {
    DirVector Mapped(P.NumCommon, Dir::Any);
    for (unsigned C = 0; C < P.NumCommon; ++C)
      if (CommonMap[C] && *CommonMap[C] < V.size())
        Mapped[C] = V[*CommonMap[C]];
    Expanded.Vectors.push_back(std::move(Mapped));
  }
  return Expanded;
}

void DependenceCache::insertDirections(const DependenceProblem &P,
                                       const DirectionResult &R,
                                       uint64_t Tag) {
  bool Swapped;
  Key K = keyFor(P, /*IncludeBounds=*/true, Swapped);
  DirectionResult Stored = R;
  if (Opts.ImprovedKey) {
    // Shrink to the reduced problem's coordinates so entries are
    // independent of the surrounding unused loops.
    std::vector<std::optional<unsigned>> CommonMap;
    DependenceProblem Reduced = P.withUnusedLoopsRemoved(CommonMap);
    DirectionResult Shrunk = R;
    Shrunk.Distances.assign(Reduced.NumCommon, std::nullopt);
    Shrunk.Vectors.clear();
    for (unsigned C = 0; C < P.NumCommon; ++C)
      if (CommonMap[C] && C < R.Distances.size())
        Shrunk.Distances[*CommonMap[C]] = R.Distances[C];
    for (const DirVector &V : R.Vectors) {
      DirVector Small(Reduced.NumCommon, Dir::Any);
      for (unsigned C = 0; C < P.NumCommon; ++C)
        if (CommonMap[C] && C < V.size())
          Small[*CommonMap[C]] = V[C];
      Shrunk.Vectors.push_back(std::move(Small));
    }
    Stored = std::move(Shrunk);
  }
  if (Swapped)
    Stored = reverseDirections(Stored);
  Shard &S = shardFor(K);
  std::lock_guard<std::mutex> Lock(S.Mutex);
  if (Opts.TrackRecency)
    S.DirUse[K] = UseTick.fetch_add(1, std::memory_order_relaxed);
  auto Res = S.Directions.emplace(std::move(K), std::move(Stored));
  if (Res.second && Tag != 0)
    S.DirTag.emplace(Res.first->first, Tag);
}

uint64_t DependenceCache::invalidateFingerprints(
    const std::vector<uint64_t> &Tags) {
  if (Tags.empty())
    return 0;
  std::unordered_set<uint64_t> Stale(Tags.begin(), Tags.end());
  uint64_t Removed = 0;
  for (const auto &S : Shards) {
    std::lock_guard<std::mutex> Lock(S->Mutex);
    for (auto It = S->FullTag.begin(); It != S->FullTag.end();) {
      if (Stale.count(It->second)) {
        Removed += S->Full.erase(It->first);
        S->FullUse.erase(It->first);
        It = S->FullTag.erase(It);
      } else {
        ++It;
      }
    }
    for (auto It = S->DirTag.begin(); It != S->DirTag.end();) {
      if (Stale.count(It->second)) {
        Removed += S->Directions.erase(It->first);
        S->DirUse.erase(It->first);
        It = S->DirTag.erase(It);
      } else {
        ++It;
      }
    }
  }
  return Removed;
}

std::optional<bool>
DependenceCache::lookupGcdSolvable(const DependenceProblem &P) {
  GcdQueries.fetch_add(1, std::memory_order_relaxed);
  bool Swapped;
  Key K = keyFor(P, /*IncludeBounds=*/false, Swapped);
  Shard &S = shardFor(K);
  bool Solvable;
  {
    std::lock_guard<std::mutex> Lock(S.Mutex);
    auto It = S.Gcd.find(K);
    if (It == S.Gcd.end())
      return std::nullopt;
    Solvable = It->second;
  }
  GcdHits.fetch_add(1, std::memory_order_relaxed);
  return Solvable;
}

void DependenceCache::insertGcdSolvable(const DependenceProblem &P,
                                        bool Solvable) {
  bool Swapped;
  Key K = keyFor(P, /*IncludeBounds=*/false, Swapped);
  Shard &S = shardFor(K);
  std::lock_guard<std::mutex> Lock(S.Mutex);
  S.Gcd.emplace(std::move(K), Solvable);
}

uint64_t DependenceCache::uniqueFull() const {
  uint64_t Total = 0;
  for (const auto &S : Shards) {
    std::lock_guard<std::mutex> Lock(S->Mutex);
    Total += S->Full.size();
  }
  return Total;
}

uint64_t DependenceCache::uniqueDirections() const {
  uint64_t Total = 0;
  for (const auto &S : Shards) {
    std::lock_guard<std::mutex> Lock(S->Mutex);
    Total += S->Directions.size();
  }
  return Total;
}

uint64_t DependenceCache::uniqueNoBounds() const {
  uint64_t Total = 0;
  for (const auto &S : Shards) {
    std::lock_guard<std::mutex> Lock(S->Mutex);
    Total += S->Gcd.size();
  }
  return Total;
}

uint64_t DependenceCache::evictOldest(uint64_t TargetEntries) {
  // Collect (stamp, shard, table, key) triples under the shard locks,
  // pick victims oldest-first, then delete them. Entries inserted
  // between the scan and the delete are never victims (they are not
  // in the scan), so a racing insert is at worst briefly over budget.
  struct Victim {
    uint64_t Stamp;
    unsigned ShardIdx;
    bool InDirections;
    Key K;
  };
  std::vector<Victim> All;
  uint64_t Total = 0;
  for (unsigned I = 0; I < Shards.size(); ++I) {
    Shard &S = *Shards[I];
    std::lock_guard<std::mutex> Lock(S.Mutex);
    Total += S.Full.size() + S.Directions.size();
    for (const auto &[K, R] : S.Full) {
      auto It = S.FullUse.find(K);
      All.push_back({It == S.FullUse.end() ? 0 : It->second, I, false, K});
    }
    for (const auto &[K, R] : S.Directions) {
      auto It = S.DirUse.find(K);
      All.push_back({It == S.DirUse.end() ? 0 : It->second, I, true, K});
    }
  }
  if (Total <= TargetEntries)
    return 0;
  uint64_t ToEvict = Total - TargetEntries;
  // Oldest stamps first; full sort is fine at checkpoint frequency.
  std::sort(All.begin(), All.end(), [](const Victim &A, const Victim &B) {
    return A.Stamp < B.Stamp;
  });
  uint64_t Evicted = 0;
  for (const Victim &V : All) {
    if (Evicted >= ToEvict)
      break;
    Shard &S = *Shards[V.ShardIdx];
    std::lock_guard<std::mutex> Lock(S.Mutex);
    if (V.InDirections) {
      Evicted += S.Directions.erase(V.K);
      S.DirUse.erase(V.K);
      S.DirTag.erase(V.K);
    } else {
      Evicted += S.Full.erase(V.K);
      S.FullUse.erase(V.K);
      S.FullTag.erase(V.K);
    }
  }
  return Evicted;
}

void DependenceCache::clear() {
  for (const auto &S : Shards) {
    std::lock_guard<std::mutex> Lock(S->Mutex);
    S->Full.clear();
    S->Directions.clear();
    S->Gcd.clear();
    S->FullUse.clear();
    S->DirUse.clear();
    S->FullTag.clear();
    S->DirTag.clear();
  }
  FullQueries = FullHits = DirQueries = DirHits = 0;
  GcdQueries = GcdHits = 0;
}

DirectionResult edda::reverseDirections(const DirectionResult &R) {
  DirectionResult Out = R;
  for (DirVector &V : Out.Vectors)
    for (Dir &D : V) {
      if (D == Dir::Less)
        D = Dir::Greater;
      else if (D == Dir::Greater)
        D = Dir::Less;
    }
  for (std::optional<int64_t> &Dist : Out.Distances)
    if (Dist)
      *Dist = -*Dist;
  return Out;
}

std::vector<int64_t> edda::swapWitness(const std::vector<int64_t> &X,
                                       unsigned NumLoopsA,
                                       unsigned NumLoopsB) {
  // Input layout [A|B|sym] with |A| = NumLoopsA; output [B|A|sym].
  std::vector<int64_t> Out;
  Out.reserve(X.size());
  Out.insert(Out.end(), X.begin() + NumLoopsA,
             X.begin() + NumLoopsA + NumLoopsB);
  Out.insert(Out.end(), X.begin(), X.begin() + NumLoopsA);
  Out.insert(Out.end(), X.begin() + NumLoopsA + NumLoopsB, X.end());
  return Out;
}

//===----------------------------------------------------------------------===//
// Persistence
//===----------------------------------------------------------------------===//

namespace {

void writeVector(std::ostream &Out, const std::vector<int64_t> &V) {
  Out << V.size();
  for (int64_t X : V)
    Out << " " << X;
  Out << "\n";
}

bool readVector(std::istream &In, std::vector<int64_t> &V) {
  size_t Size;
  if (!(In >> Size) || Size > (1u << 20))
    return false;
  V.resize(Size);
  for (size_t I = 0; I < Size; ++I)
    if (!(In >> V[I]))
      return false;
  return true;
}

} // namespace

bool DependenceCache::saveToFile(const std::string &Path) const {
  // Serialize each table shard-by-shard under that shard's lock into
  // a memory buffer first: the entry counts written ahead of each
  // section must match the entries that follow even while analyzer
  // threads are inserting concurrently (entries themselves are
  // immutable once inserted, so a per-shard-atomic snapshot is a
  // valid cache).
  std::ostringstream FullBlob;
  size_t FullCount = 0;
  for (const auto &S : Shards) {
    std::lock_guard<std::mutex> Lock(S->Mutex);
    FullCount += S->Full.size();
    for (const auto &[K, R] : S->Full) {
      auto TagIt = S->FullTag.find(K);
      uint64_t Tag = TagIt == S->FullTag.end() ? 0 : TagIt->second;
      writeVector(FullBlob, K);
      FullBlob << static_cast<int>(R.Answer) << " "
               << static_cast<int>(R.DecidedBy) << " "
               << (R.Exact ? 1 : 0) << " " << (R.Widened ? 1 : 0) << " "
               << Tag << "\n";
    }
  }
  std::ostringstream DirBlob;
  size_t DirCount = 0;
  for (const auto &S : Shards) {
    std::lock_guard<std::mutex> Lock(S->Mutex);
    DirCount += S->Directions.size();
    for (const auto &[K, R] : S->Directions) {
      auto TagIt = S->DirTag.find(K);
      uint64_t Tag = TagIt == S->DirTag.end() ? 0 : TagIt->second;
      writeVector(DirBlob, K);
      DirBlob << static_cast<int>(R.RootAnswer) << " "
              << static_cast<int>(R.RootDecidedBy) << " "
              << (R.Exact ? 1 : 0) << " " << (R.Widened ? 1 : 0) << " "
              << (R.RootWidened ? 1 : 0) << " " << Tag << " "
              << R.Vectors.size() << " " << R.Distances.size() << "\n";
      for (const DirVector &V : R.Vectors) {
        DirBlob << V.size();
        for (Dir D : V)
          DirBlob << " " << static_cast<int>(D);
        DirBlob << "\n";
      }
      for (const std::optional<int64_t> &Dist : R.Distances) {
        if (Dist)
          DirBlob << "d " << *Dist << "\n";
        else
          DirBlob << "u\n";
      }
    }
  }
  std::ostringstream GcdBlob;
  size_t GcdCount = 0;
  for (const auto &S : Shards) {
    std::lock_guard<std::mutex> Lock(S->Mutex);
    GcdCount += S->Gcd.size();
    for (const auto &[K, Solvable] : S->Gcd) {
      writeVector(GcdBlob, K);
      GcdBlob << (Solvable ? 1 : 0) << "\n";
    }
  }

  std::ofstream Out(Path);
  if (!Out)
    return false;
  // Version 3: TestKind gained Banerjee before Unanalyzable, changing
  // the DecidedBy integer encoding. Version 4: full entries carry the
  // Widened flag (128-bit retry provenance). Version 5: direction
  // entries carry Widened/RootWidened. Version 6: full and direction
  // entries carry a fingerprint tag (incremental invalidation). Older
  // caches are rejected on load, with their entry counts reported via
  // CacheLoadStats.
  Out << "edda-depcache 6\n";
  Out << FullCount << "\n" << FullBlob.str();
  Out << DirCount << "\n" << DirBlob.str();
  Out << GcdCount << "\n" << GcdBlob.str();
  return static_cast<bool>(Out);
}

namespace {

/// Structural skipping of cache format versions 3-5, enough to count
/// the entries of a rejected file (a full parse is unnecessary: only
/// the counts are reported, so warm-start callers can log what they
/// dropped rather than silently cold-start).
bool skipLegacyFullEntry(std::istream &In, int Version) {
  std::vector<int64_t> K;
  if (!readVector(In, K))
    return false;
  int Ints = Version >= 4 ? 4 : 3; // v4 added the Widened flag.
  int64_t Tmp;
  for (int I = 0; I < Ints; ++I)
    if (!(In >> Tmp))
      return false;
  return true;
}

bool skipLegacyDirEntry(std::istream &In, int Version) {
  std::vector<int64_t> K;
  if (!readVector(In, K))
    return false;
  // v5 added Widened/RootWidened to the Root/RootBy/Exact header.
  int Ints = Version >= 5 ? 5 : 3;
  int64_t Tmp;
  for (int I = 0; I < Ints; ++I)
    if (!(In >> Tmp))
      return false;
  size_t NumVectors, NumDistances;
  if (!(In >> NumVectors >> NumDistances) || NumVectors > (1u << 20) ||
      NumDistances > (1u << 10))
    return false;
  for (size_t V = 0; V < NumVectors; ++V) {
    size_t Len;
    if (!(In >> Len) || Len > (1u << 10))
      return false;
    for (size_t D = 0; D < Len; ++D)
      if (!(In >> Tmp))
        return false;
  }
  for (size_t D = 0; D < NumDistances; ++D) {
    std::string Tag;
    if (!(In >> Tag))
      return false;
    if (Tag == "d") {
      if (!(In >> Tmp))
        return false;
    } else if (Tag != "u") {
      return false;
    }
  }
  return true;
}

uint64_t countLegacyEntries(std::istream &In, int Version) {
  if (Version < 3 || Version > 5)
    return 0; // Unknown shape; nothing trustworthy to count.
  uint64_t Rejected = 0;
  size_t Count;
  if (!(In >> Count) || Count > (1u << 24))
    return Rejected;
  Rejected += Count;
  for (size_t I = 0; I < Count; ++I)
    if (!skipLegacyFullEntry(In, Version))
      return Rejected;
  if (!(In >> Count) || Count > (1u << 24))
    return Rejected;
  Rejected += Count;
  for (size_t I = 0; I < Count; ++I)
    if (!skipLegacyDirEntry(In, Version))
      return Rejected;
  if (!(In >> Count) || Count > (1u << 24))
    return Rejected;
  Rejected += Count; // GCD entries need no skipping: nothing follows.
  return Rejected;
}

} // namespace

bool DependenceCache::loadFromFile(const std::string &Path) {
  return loadFromFile(Path, nullptr);
}

bool DependenceCache::loadFromFile(const std::string &Path,
                                   CacheLoadStats *LoadStats) {
  if (LoadStats)
    *LoadStats = CacheLoadStats{};
  std::ifstream In(Path);
  if (!In)
    return false;
  std::string Magic;
  int Version;
  if (!(In >> Magic >> Version) || Magic != "edda-depcache")
    return false;
  if (LoadStats)
    LoadStats->FileVersion = Version;
  if (Version != 6) {
    if (LoadStats)
      LoadStats->RejectedEntries = countLegacyEntries(In, Version);
    return false;
  }

  uint64_t Loaded = 0;
  size_t Count;
  if (!(In >> Count))
    return false;
  for (size_t I = 0; I < Count; ++I) {
    Key K;
    int Answer, DecidedBy, Exact, Widened;
    uint64_t Tag;
    if (!readVector(In, K) ||
        !(In >> Answer >> DecidedBy >> Exact >> Widened >> Tag))
      return false;
    CascadeResult R;
    R.Answer = static_cast<DepAnswer>(Answer);
    R.DecidedBy = static_cast<TestKind>(DecidedBy);
    R.Exact = Exact != 0;
    R.Widened = Widened != 0;
    Shard &S = shardFor(K);
    auto Res = S.Full.emplace(std::move(K), std::move(R));
    if (Res.second && Tag != 0)
      S.FullTag.emplace(Res.first->first, Tag);
    ++Loaded;
  }

  if (!(In >> Count))
    return false;
  for (size_t I = 0; I < Count; ++I) {
    Key K;
    int Root, RootBy, Exact, Widened, RootWidened;
    uint64_t Tag;
    size_t NumVectors, NumDistances;
    if (!readVector(In, K) ||
        !(In >> Root >> RootBy >> Exact >> Widened >> RootWidened >>
          Tag >> NumVectors >> NumDistances) ||
        NumVectors > (1u << 20) || NumDistances > (1u << 10))
      return false;
    DirectionResult R;
    R.RootAnswer = static_cast<DepAnswer>(Root);
    R.RootDecidedBy = static_cast<TestKind>(RootBy);
    R.Exact = Exact != 0;
    R.Widened = Widened != 0;
    R.RootWidened = RootWidened != 0;
    for (size_t V = 0; V < NumVectors; ++V) {
      size_t Len;
      if (!(In >> Len) || Len > (1u << 10))
        return false;
      DirVector Vec(Len);
      for (size_t D = 0; D < Len; ++D) {
        int Raw;
        if (!(In >> Raw))
          return false;
        Vec[D] = static_cast<Dir>(Raw);
      }
      R.Vectors.push_back(std::move(Vec));
    }
    for (size_t D = 0; D < NumDistances; ++D) {
      std::string Tag;
      if (!(In >> Tag))
        return false;
      if (Tag == "d") {
        int64_t Value;
        if (!(In >> Value))
          return false;
        R.Distances.push_back(Value);
      } else if (Tag == "u") {
        R.Distances.push_back(std::nullopt);
      } else {
        return false;
      }
    }
    Shard &S = shardFor(K);
    auto Res = S.Directions.emplace(std::move(K), std::move(R));
    if (Res.second && Tag != 0)
      S.DirTag.emplace(Res.first->first, Tag);
    ++Loaded;
  }

  if (!(In >> Count))
    return false;
  for (size_t I = 0; I < Count; ++I) {
    Key K;
    int Solvable;
    if (!readVector(In, K) || !(In >> Solvable))
      return false;
    Shard &S = shardFor(K);
    S.Gcd.emplace(std::move(K), Solvable != 0);
    ++Loaded;
  }
  if (LoadStats)
    LoadStats->LoadedEntries = Loaded;
  return true;
}
