//===- deptest/ExtendedGcd.h - Extended GCD preprocessing ------*- C++ -*-===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Banerjee's extended GCD test (paper section 3.1), used as the
/// preprocessing step of the cascade. The subscript equality system
/// x·A = c is factored as U·A = D with U unimodular and D echelon; the
/// system has an integer solution iff t·D = c does, which back
/// substitution decides directly. On success the solution is parametric:
///
///   x = Offset + sum_f t_f * FreeRows[f]
///
/// over fresh free integer variables t. Every equality constraint is
/// eliminated and the loop-bound constraints are rewritten over t, the
/// single input form shared by all the later tests.
///
//===----------------------------------------------------------------------===//

#ifndef EDDA_DEPTEST_EXTENDEDGCD_H
#define EDDA_DEPTEST_EXTENDEDGCD_H

#include "deptest/LinearSystem.h"
#include "deptest/Problem.h"
#include "support/Matrix.h"

#include <cstdint>
#include <optional>
#include <vector>

namespace edda {

/// Parametric integer solution of x·A = c.
struct DiophantineSolution {
  /// True when an integer solution exists (ignoring any bounds).
  bool Solvable = false;
  /// True when 64-bit arithmetic overflowed; the caller must treat the
  /// problem as unanalyzable (conservatively dependent).
  bool Overflow = false;
  unsigned NumX = 0;
  unsigned NumFree = 0;
  /// A particular solution (size NumX). Meaningful when Solvable.
  std::vector<int64_t> Offset;
  /// Basis of the solution lattice: NumFree x NumX rows of the unimodular
  /// factor. Meaningful when Solvable.
  IntMatrix FreeRows{0, 0};

  /// Instantiates x for concrete free-variable values \p T
  /// (T.size() == NumFree); std::nullopt on overflow.
  std::optional<std::vector<int64_t>>
  instantiate(const std::vector<int64_t> &T) const;
};

/// The unimodular/echelon factorization U·A = D underlying the test
/// (exposed for library users and for property tests).
struct UnimodularFactorization {
  bool Ok = false;   ///< False when 64-bit arithmetic overflowed.
  IntMatrix U{0, 0}; ///< Unimodular (|det| == 1), NumX x NumX.
  IntMatrix D{0, 0}; ///< Echelon, NumX x NumEq.
  unsigned Rank = 0; ///< Number of nonzero rows of D.
};

/// Factors \p A (NumX x NumEq) as U·A = D with U unimodular and D
/// echelon, via extended-gcd row elimination.
UnimodularFactorization factorUnimodular(const IntMatrix &A);

/// Solves x·A = c over the integers. \p A is NumX x NumEq; \p C has one
/// entry per equation.
DiophantineSolution solveDiophantine(const IntMatrix &A,
                                     const std::vector<int64_t> &C);

/// Runs the extended GCD test on a dependence problem's subscript
/// equations (columns of A are the equations, rows the x variables).
DiophantineSolution solveEquations(const DependenceProblem &Problem);

/// Projects an affine form over x into an affine form over the free
/// variables t: fills \p TCoeffs (size NumFree) and \p TConst such that
/// form(x(t)) == TConst + sum TCoeffs[f]*t_f. Returns false on overflow.
bool projectToFree(const XAffine &Form, const DiophantineSolution &Sol,
                   std::vector<int64_t> &TCoeffs, int64_t &TConst);

/// Builds the bounds system over t for \p Problem under \p Sol: for every
/// present bound Lo_l <= x_l <= Hi_l, the projected constraints
/// (Lo_l - x_l)(t) <= 0 and (x_l - Hi_l)(t) <= 0. Returns std::nullopt on
/// overflow. Constraints that project to a constant falsehood are kept
/// (SVPC reports the contradiction).
std::optional<LinearSystem>
boundsToFreeSpace(const DependenceProblem &Problem,
                  const DiophantineSolution &Sol);

/// The paper's simple per-equation GCD test (Banerjee algorithm 5.4.1,
/// used as a baseline in section 7 and as a teaching comparator): each
/// single equation sum a_j x_j = c is integer-solvable iff gcd(a_j)
/// divides c. Returns false (independent) when some equation fails.
bool simpleGcdTest(const DependenceProblem &Problem);

} // namespace edda

#endif // EDDA_DEPTEST_EXTENDEDGCD_H
