//===- deptest/ExtendedGcd.h - Extended GCD preprocessing ------*- C++ -*-===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Banerjee's extended GCD test (paper section 3.1), used as the
/// preprocessing step of the cascade. The subscript equality system
/// x·A = c is factored as U·A = D with U unimodular and D echelon; the
/// system has an integer solution iff t·D = c does, which back
/// substitution decides directly. On success the solution is parametric:
///
///   x = Offset + sum_f t_f * FreeRows[f]
///
/// over fresh free integer variables t. Every equality constraint is
/// eliminated and the loop-bound constraints are rewritten over t, the
/// single input form shared by all the later tests.
///
/// Everything here is templated on the scalar type T: the int64_t
/// instantiation is the fast path, and when it reports Overflow the
/// pipeline re-runs preprocessing with T = Int128 before giving the
/// query up as unanalyzable (the widening ladder, docs/ALGORITHMS.md).
/// The problem's coefficients stay int64_t either way; only the
/// computation widens.
///
//===----------------------------------------------------------------------===//

#ifndef EDDA_DEPTEST_EXTENDEDGCD_H
#define EDDA_DEPTEST_EXTENDEDGCD_H

#include "deptest/LinearSystem.h"
#include "deptest/Problem.h"
#include "support/Matrix.h"

#include <cstdint>
#include <optional>
#include <vector>

namespace edda {

/// Parametric integer solution of x·A = c.
template <typename T> struct DiophantineSolutionT {
  /// True when an integer solution exists (ignoring any bounds).
  bool Solvable = false;
  /// True when T-width arithmetic overflowed; the caller must widen or
  /// treat the problem as unanalyzable (conservatively dependent).
  bool Overflow = false;
  unsigned NumX = 0;
  unsigned NumFree = 0;
  /// A particular solution (size NumX). Meaningful when Solvable.
  std::vector<T> Offset;
  /// Basis of the solution lattice: NumFree x NumX rows of the unimodular
  /// factor. Meaningful when Solvable.
  MatrixT<T> FreeRows{0, 0};

  /// Instantiates x for concrete free-variable values \p Vals
  /// (Vals.size() == NumFree); std::nullopt on overflow.
  std::optional<std::vector<T>>
  instantiate(const std::vector<T> &Vals) const;
};

/// The unimodular/echelon factorization U·A = D underlying the test
/// (exposed for library users and for property tests).
template <typename T> struct UnimodularFactorizationT {
  bool Ok = false;       ///< False when T-width arithmetic overflowed.
  MatrixT<T> U{0, 0};    ///< Unimodular (|det| == 1), NumX x NumX.
  MatrixT<T> D{0, 0};    ///< Echelon, NumX x NumEq.
  unsigned Rank = 0;     ///< Number of nonzero rows of D.
};

/// The 64-bit fast-path instantiations (the historical names).
using DiophantineSolution = DiophantineSolutionT<int64_t>;
using UnimodularFactorization = UnimodularFactorizationT<int64_t>;

/// Factors \p A (NumX x NumEq) as U·A = D with U unimodular and D
/// echelon, via extended-gcd row elimination.
template <typename T>
UnimodularFactorizationT<T> factorUnimodular(const MatrixT<T> &A);

/// Solves x·A = c over the integers. \p A is NumX x NumEq; \p C has one
/// entry per equation.
template <typename T>
DiophantineSolutionT<T> solveDiophantine(const MatrixT<T> &A,
                                         const std::vector<T> &C);

/// Runs the extended GCD test on a dependence problem's subscript
/// equations (columns of A are the equations, rows the x variables),
/// computing at width T.
template <typename T = int64_t>
DiophantineSolutionT<T> solveEquations(const DependenceProblem &Problem);

/// Projects an affine form over x into an affine form over the free
/// variables t: fills \p TCoeffs (size NumFree) and \p TConst such that
/// form(x(t)) == TConst + sum TCoeffs[f]*t_f. Returns false on overflow.
template <typename T>
bool projectToFree(const XAffine &Form, const DiophantineSolutionT<T> &Sol,
                   std::vector<T> &TCoeffs, T &TConst);

/// Builds the bounds system over t for \p Problem under \p Sol: for every
/// present bound Lo_l <= x_l <= Hi_l, the projected constraints
/// (Lo_l - x_l)(t) <= 0 and (x_l - Hi_l)(t) <= 0. Returns std::nullopt on
/// overflow. Constraints that project to a constant falsehood are kept
/// (SVPC reports the contradiction).
template <typename T>
std::optional<LinearSystemT<T>>
boundsToFreeSpace(const DependenceProblem &Problem,
                  const DiophantineSolutionT<T> &Sol);

/// The paper's simple per-equation GCD test (Banerjee algorithm 5.4.1,
/// used as a baseline in section 7 and as a teaching comparator): each
/// single equation sum a_j x_j = c is integer-solvable iff gcd(a_j)
/// divides c. Returns false (independent) when some equation fails.
bool simpleGcdTest(const DependenceProblem &Problem);

} // namespace edda

#endif // EDDA_DEPTEST_EXTENDEDGCD_H
