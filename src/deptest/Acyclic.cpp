//===- deptest/Acyclic.cpp - The Acyclic test -----------------------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "deptest/Acyclic.h"

#include "support/IntMath.h"

#include <algorithm>
#include <map>

using namespace edda;

namespace {

/// Moves single-variable and constant constraints out of \p Work into the
/// intervals, to a fixpoint. Returns false when a contradiction is found.
bool simplifyToIntervals(std::vector<LinearConstraint> &Work,
                         VarIntervals &Intervals) {
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (auto It = Work.begin(); It != Work.end();) {
      unsigned Active = It->numActiveVars();
      if (Active == 0) {
        if (It->Bound < 0)
          return false;
        It = Work.erase(It);
        Changed = true;
        continue;
      }
      if (Active == 1) {
        unsigned V = It->soleVar();
        int64_t A = It->Coeffs[V];
        if (A > 0)
          Intervals.tightenHi(V, floorDiv(It->Bound, A));
        else
          Intervals.tightenLo(V, ceilDiv(It->Bound, A));
        It = Work.erase(It);
        Changed = true;
        continue;
      }
      ++It;
    }
    if (Intervals.contradictory())
      return false;
  }
  return true;
}

} // namespace

AcyclicResult edda::runAcyclic(unsigned NumVars,
                               std::vector<LinearConstraint> MultiVar,
                               VarIntervals Intervals) {
  AcyclicResult Result;
  std::vector<LinearConstraint> Work = std::move(MultiVar);

  while (true) {
    if (!simplifyToIntervals(Work, Intervals)) {
      Result.St = AcyclicResult::Status::Independent;
      Result.Intervals = std::move(Intervals);
      return Result;
    }

    if (Work.empty()) {
      // Every multi-variable constraint eliminated: the system is
      // feasible. Build a witness from the intervals, then replay the
      // eliminations to repair the eliminated variables.
      std::vector<int64_t> Sample(NumVars, 0);
      for (unsigned V = 0; V < NumVars; ++V) {
        if (Intervals.Lo[V])
          Sample[V] = *Intervals.Lo[V];
        else if (Intervals.Hi[V])
          Sample[V] = *Intervals.Hi[V];
      }
      Result.St = AcyclicResult::Status::Dependent;
      Result.Intervals = std::move(Intervals);
      if (completeSample(Sample, Result.Log, Result.Intervals))
        Result.Sample = std::move(Sample);
      return Result;
    }

    // Look for a variable the remaining constraints bound in only one
    // direction (a leaf of the paper's constraint graph).
    bool Eliminated = false;
    for (unsigned V = 0; V < NumVars && !Eliminated; ++V) {
      bool Pos = false, Neg = false;
      for (const LinearConstraint &C : Work) {
        if (C.Coeffs[V] > 0)
          Pos = true;
        else if (C.Coeffs[V] < 0)
          Neg = true;
      }
      if (Pos == Neg) // absent, or bounded both ways
        continue;

      AcyclicElimination Elim;
      Elim.Var = V;
      Elim.UpperBounded = Pos;
      const std::optional<int64_t> &Endpoint =
          Pos ? Intervals.Lo[V] : Intervals.Hi[V];
      if (Endpoint) {
        // Pin the variable to the endpoint opposite its constrained
        // direction and substitute.
        Elim.Pinned = true;
        Elim.Value = *Endpoint;
        for (LinearConstraint &C : Work) {
          if (C.Coeffs[V] == 0)
            continue;
          CheckedInt NewBound = CheckedInt(C.Bound) -
                                CheckedInt(C.Coeffs[V]) * Elim.Value;
          if (!NewBound.valid()) {
            Result.St = AcyclicResult::Status::Overflow;
            Result.Intervals = std::move(Intervals);
            return Result;
          }
          C.Bound = NewBound.get();
          C.Coeffs[V] = 0;
        }
        Intervals.Lo[V] = Elim.Value;
        Intervals.Hi[V] = Elim.Value;
      } else {
        // Unbounded on the needed side: the variable can always be
        // pushed far enough, so it goes away with its constraints.
        Elim.Pinned = false;
        for (auto It = Work.begin(); It != Work.end();) {
          if (It->Coeffs[V] != 0) {
            Elim.DroppedConstraints.push_back(*It);
            It = Work.erase(It);
          } else {
            ++It;
          }
        }
      }
      Result.Log.push_back(std::move(Elim));
      Eliminated = true;
    }

    if (!Eliminated) {
      // Every remaining variable is bounded both ways: a cycle.
      Result.St = AcyclicResult::Status::NeedsMore;
      Result.Intervals = std::move(Intervals);
      Result.Remaining = std::move(Work);
      return Result;
    }
  }
}

bool edda::completeSample(std::vector<int64_t> &Sample,
                          const std::vector<AcyclicElimination> &Log,
                          const VarIntervals &Intervals) {
  // Replay in reverse: a step's dropped constraints only mention
  // variables eliminated later (already assigned) or survivors.
  for (auto It = Log.rbegin(); It != Log.rend(); ++It) {
    const AcyclicElimination &Elim = *It;
    if (Elim.Pinned) {
      Sample[Elim.Var] = Elim.Value;
      continue;
    }
    std::optional<int64_t> Best;
    for (const LinearConstraint &C : Elim.DroppedConstraints) {
      int64_t A = C.Coeffs[Elim.Var];
      assert(A != 0 && "dropped constraint without the variable");
      CheckedInt Rest(C.Bound);
      for (unsigned J = 0; J < C.Coeffs.size(); ++J)
        if (J != Elim.Var && C.Coeffs[J] != 0)
          Rest -= CheckedInt(C.Coeffs[J]) * Sample[J];
      if (!Rest.valid())
        return false;
      // A*v <= Rest: v <= floor(Rest/A) when A > 0 (push low), else
      // v >= ceil(Rest/A) (push high).
      int64_t Limit = A > 0 ? floorDiv(Rest.get(), A)
                            : ceilDiv(Rest.get(), A);
      if (!Best)
        Best = Limit;
      else
        Best = Elim.UpperBounded ? std::min(*Best, Limit)
                                 : std::max(*Best, Limit);
    }
    assert(Best && "dropped variable had no constraints");
    // Respect the variable's own one-sided interval.
    if (Elim.UpperBounded && Intervals.Hi[Elim.Var])
      Best = std::min(*Best, *Intervals.Hi[Elim.Var]);
    if (!Elim.UpperBounded && Intervals.Lo[Elim.Var])
      Best = std::max(*Best, *Intervals.Lo[Elim.Var]);
    Sample[Elim.Var] = *Best;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Explicit constraint graph (diagnostics / Figure 1 style output)
//===----------------------------------------------------------------------===//

AcyclicGraph
edda::buildAcyclicGraph(unsigned NumVars,
                        const std::vector<LinearConstraint> &MultiVar) {
  AcyclicGraph Graph;
  for (const LinearConstraint &C : MultiVar) {
    for (unsigned I = 0; I < NumVars; ++I) {
      if (C.Coeffs[I] == 0)
        continue;
      for (unsigned J = I + 1; J < NumVars; ++J) {
        if (C.Coeffs[J] == 0)
          continue;
        // Rearranged as aI*tI <= ... - aJ*tJ: the source role follows
        // sign(aI), the sink role follows sign(-aJ); and symmetrically.
        int NodeI = static_cast<int>(I) + 1;
        int NodeJ = static_cast<int>(J) + 1;
        int From1 = C.Coeffs[I] > 0 ? NodeI : -NodeI;
        int To1 = C.Coeffs[J] < 0 ? NodeJ : -NodeJ;
        int From2 = C.Coeffs[J] > 0 ? NodeJ : -NodeJ;
        int To2 = C.Coeffs[I] < 0 ? NodeI : -NodeI;
        Graph.Edges.push_back({From1, To1});
        Graph.Edges.push_back({From2, To2});
      }
    }
  }
  return Graph;
}

bool AcyclicGraph::hasCycle() const {
  // Iterative three-color DFS over the signed node ids.
  std::map<int, std::vector<int>> Succ;
  for (const Edge &E : Edges)
    Succ[E.From].push_back(E.To);
  std::map<int, int> Color; // 0 white, 1 grey, 2 black
  for (const auto &[Start, Ignored] : Succ) {
    (void)Ignored;
    if (Color[Start] != 0)
      continue;
    std::vector<std::pair<int, size_t>> Stack;
    Stack.push_back({Start, 0});
    Color[Start] = 1;
    while (!Stack.empty()) {
      auto &[Node, NextIdx] = Stack.back();
      std::vector<int> &Out = Succ[Node];
      if (NextIdx == Out.size()) {
        Color[Node] = 2;
        Stack.pop_back();
        continue;
      }
      int Next = Out[NextIdx++];
      if (Color[Next] == 1)
        return true;
      if (Color[Next] == 0) {
        Color[Next] = 1;
        Stack.push_back({Next, 0});
      }
    }
  }
  return false;
}

std::string AcyclicGraph::str() const {
  std::string Out;
  for (const Edge &E : Edges) {
    auto NodeName = [](int Node) {
      int Var = (Node > 0 ? Node : -Node) - 1;
      return std::string(Node > 0 ? "t" : "-t") + std::to_string(Var);
    };
    Out += NodeName(E.From) + " -> " + NodeName(E.To) + "\n";
  }
  return Out;
}
