//===- deptest/Acyclic.cpp - The Acyclic test -----------------------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "deptest/Acyclic.h"

#include "support/WideInt.h"

#include <algorithm>
#include <map>

using namespace edda;

namespace {

enum class SimplifyOutcome { Ok, Contradiction, Overflow };

/// Moves single-variable and constant constraints out of \p Work into the
/// intervals, to a fixpoint.
template <typename T>
SimplifyOutcome simplifyToIntervals(std::vector<LinearConstraintT<T>> &Work,
                                    VarIntervalsT<T> &Intervals) {
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (auto It = Work.begin(); It != Work.end();) {
      unsigned Active = It->numActiveVars();
      if (Active == 0) {
        if (It->Bound < T(0))
          return SimplifyOutcome::Contradiction;
        It = Work.erase(It);
        Changed = true;
        continue;
      }
      if (Active == 1) {
        unsigned V = It->soleVar();
        T A = It->Coeffs[V];
        // Substitution can leave arbitrary coefficients here, so the
        // (min, -1) division pair is live: use the checked variants.
        std::optional<T> Limit = A > T(0) ? checkedFloorDiv(It->Bound, A)
                                          : checkedCeilDiv(It->Bound, A);
        if (!Limit)
          return SimplifyOutcome::Overflow;
        if (A > T(0))
          Intervals.tightenHi(V, *Limit);
        else
          Intervals.tightenLo(V, *Limit);
        It = Work.erase(It);
        Changed = true;
        continue;
      }
      ++It;
    }
    if (Intervals.contradictory())
      return SimplifyOutcome::Contradiction;
  }
  return SimplifyOutcome::Ok;
}

} // namespace

namespace edda {

template <typename T>
AcyclicResultT<T> runAcyclic(unsigned NumVars,
                             std::vector<LinearConstraintT<T>> MultiVar,
                             VarIntervalsT<T> Intervals) {
  AcyclicResultT<T> Result;
  std::vector<LinearConstraintT<T>> Work = std::move(MultiVar);

  while (true) {
    switch (simplifyToIntervals(Work, Intervals)) {
    case SimplifyOutcome::Contradiction:
      Result.St = AcyclicResultT<T>::Status::Independent;
      Result.Intervals = std::move(Intervals);
      return Result;
    case SimplifyOutcome::Overflow:
      Result.St = AcyclicResultT<T>::Status::Overflow;
      Result.Intervals = std::move(Intervals);
      return Result;
    case SimplifyOutcome::Ok:
      break;
    }

    if (Work.empty()) {
      // Every multi-variable constraint eliminated: the system is
      // feasible. Build a witness from the intervals, then replay the
      // eliminations to repair the eliminated variables.
      std::vector<T> Sample(NumVars, T(0));
      for (unsigned V = 0; V < NumVars; ++V) {
        if (Intervals.Lo[V])
          Sample[V] = *Intervals.Lo[V];
        else if (Intervals.Hi[V])
          Sample[V] = *Intervals.Hi[V];
      }
      Result.St = AcyclicResultT<T>::Status::Dependent;
      Result.Intervals = std::move(Intervals);
      if (completeSample(Sample, Result.Log, Result.Intervals))
        Result.Sample = std::move(Sample);
      return Result;
    }

    // Look for a variable the remaining constraints bound in only one
    // direction (a leaf of the paper's constraint graph).
    bool Eliminated = false;
    for (unsigned V = 0; V < NumVars && !Eliminated; ++V) {
      bool Pos = false, Neg = false;
      for (const LinearConstraintT<T> &C : Work) {
        if (C.Coeffs[V] > T(0))
          Pos = true;
        else if (C.Coeffs[V] < T(0))
          Neg = true;
      }
      if (Pos == Neg) // absent, or bounded both ways
        continue;

      AcyclicEliminationT<T> Elim;
      Elim.Var = V;
      Elim.UpperBounded = Pos;
      const std::optional<T> &Endpoint =
          Pos ? Intervals.Lo[V] : Intervals.Hi[V];
      if (Endpoint) {
        // Pin the variable to the endpoint opposite its constrained
        // direction and substitute.
        Elim.Pinned = true;
        Elim.Value = *Endpoint;
        for (LinearConstraintT<T> &C : Work) {
          if (C.Coeffs[V] == T(0))
            continue;
          Checked<T> NewBound =
              Checked<T>(C.Bound) - Checked<T>(C.Coeffs[V]) * Elim.Value;
          if (!NewBound.valid()) {
            Result.St = AcyclicResultT<T>::Status::Overflow;
            Result.Intervals = std::move(Intervals);
            return Result;
          }
          C.Bound = NewBound.get();
          C.Coeffs[V] = T(0);
        }
        Intervals.Lo[V] = Elim.Value;
        Intervals.Hi[V] = Elim.Value;
      } else {
        // Unbounded on the needed side: the variable can always be
        // pushed far enough, so it goes away with its constraints.
        Elim.Pinned = false;
        for (auto It = Work.begin(); It != Work.end();) {
          if (It->Coeffs[V] != T(0)) {
            Elim.DroppedConstraints.push_back(*It);
            It = Work.erase(It);
          } else {
            ++It;
          }
        }
      }
      Result.Log.push_back(std::move(Elim));
      Eliminated = true;
    }

    if (!Eliminated) {
      // Every remaining variable is bounded both ways: a cycle.
      Result.St = AcyclicResultT<T>::Status::NeedsMore;
      Result.Intervals = std::move(Intervals);
      Result.Remaining = std::move(Work);
      return Result;
    }
  }
}

template <typename T>
bool completeSample(std::vector<T> &Sample,
                    const std::vector<AcyclicEliminationT<T>> &Log,
                    const VarIntervalsT<T> &Intervals) {
  // Replay in reverse: a step's dropped constraints only mention
  // variables eliminated later (already assigned) or survivors.
  for (auto It = Log.rbegin(); It != Log.rend(); ++It) {
    const AcyclicEliminationT<T> &Elim = *It;
    if (Elim.Pinned) {
      Sample[Elim.Var] = Elim.Value;
      continue;
    }
    std::optional<T> Best;
    for (const LinearConstraintT<T> &C : Elim.DroppedConstraints) {
      T A = C.Coeffs[Elim.Var];
      assert(A != T(0) && "dropped constraint without the variable");
      Checked<T> Rest(C.Bound);
      for (unsigned J = 0; J < C.Coeffs.size(); ++J)
        if (J != Elim.Var && C.Coeffs[J] != T(0))
          Rest -= Checked<T>(C.Coeffs[J]) * Sample[J];
      if (!Rest.valid())
        return false;
      // A*v <= Rest: v <= floor(Rest/A) when A > 0 (push low), else
      // v >= ceil(Rest/A) (push high). Checked: A is an arbitrary
      // coefficient, so the (min, -1) pair is reachable.
      std::optional<T> Limit = A > T(0) ? checkedFloorDiv(Rest.get(), A)
                                        : checkedCeilDiv(Rest.get(), A);
      if (!Limit)
        return false;
      if (!Best)
        Best = *Limit;
      else
        Best = Elim.UpperBounded ? std::min(*Best, *Limit)
                                 : std::max(*Best, *Limit);
    }
    assert(Best && "dropped variable had no constraints");
    // Respect the variable's own one-sided interval.
    if (Elim.UpperBounded && Intervals.Hi[Elim.Var])
      Best = std::min(*Best, *Intervals.Hi[Elim.Var]);
    if (!Elim.UpperBounded && Intervals.Lo[Elim.Var])
      Best = std::max(*Best, *Intervals.Lo[Elim.Var]);
    Sample[Elim.Var] = *Best;
  }
  return true;
}

template AcyclicResultT<int64_t>
runAcyclic(unsigned, std::vector<LinearConstraintT<int64_t>>,
           VarIntervalsT<int64_t>);
template AcyclicResultT<Int128>
runAcyclic(unsigned, std::vector<LinearConstraintT<Int128>>,
           VarIntervalsT<Int128>);
template bool completeSample(std::vector<int64_t> &,
                             const std::vector<AcyclicEliminationT<int64_t>> &,
                             const VarIntervalsT<int64_t> &);
template bool completeSample(std::vector<Int128> &,
                             const std::vector<AcyclicEliminationT<Int128>> &,
                             const VarIntervalsT<Int128> &);

} // namespace edda

//===----------------------------------------------------------------------===//
// Explicit constraint graph (diagnostics / Figure 1 style output)
//===----------------------------------------------------------------------===//

AcyclicGraph
edda::buildAcyclicGraph(unsigned NumVars,
                        const std::vector<LinearConstraint> &MultiVar) {
  AcyclicGraph Graph;
  for (const LinearConstraint &C : MultiVar) {
    for (unsigned I = 0; I < NumVars; ++I) {
      if (C.Coeffs[I] == 0)
        continue;
      for (unsigned J = I + 1; J < NumVars; ++J) {
        if (C.Coeffs[J] == 0)
          continue;
        // Rearranged as aI*tI <= ... - aJ*tJ: the source role follows
        // sign(aI), the sink role follows sign(-aJ); and symmetrically.
        int NodeI = static_cast<int>(I) + 1;
        int NodeJ = static_cast<int>(J) + 1;
        int From1 = C.Coeffs[I] > 0 ? NodeI : -NodeI;
        int To1 = C.Coeffs[J] < 0 ? NodeJ : -NodeJ;
        int From2 = C.Coeffs[J] > 0 ? NodeJ : -NodeJ;
        int To2 = C.Coeffs[I] < 0 ? NodeI : -NodeI;
        Graph.Edges.push_back({From1, To1});
        Graph.Edges.push_back({From2, To2});
      }
    }
  }
  return Graph;
}

bool AcyclicGraph::hasCycle() const {
  // Iterative three-color DFS over the signed node ids.
  std::map<int, std::vector<int>> Succ;
  for (const Edge &E : Edges)
    Succ[E.From].push_back(E.To);
  std::map<int, int> Color; // 0 white, 1 grey, 2 black
  for (const auto &[Start, Ignored] : Succ) {
    (void)Ignored;
    if (Color[Start] != 0)
      continue;
    std::vector<std::pair<int, size_t>> Stack;
    Stack.push_back({Start, 0});
    Color[Start] = 1;
    while (!Stack.empty()) {
      auto &[Node, NextIdx] = Stack.back();
      std::vector<int> &Out = Succ[Node];
      if (NextIdx == Out.size()) {
        Color[Node] = 2;
        Stack.pop_back();
        continue;
      }
      int Next = Out[NextIdx++];
      if (Color[Next] == 1)
        return true;
      if (Color[Next] == 0) {
        Color[Next] = 1;
        Stack.push_back({Next, 0});
      }
    }
  }
  return false;
}

std::string AcyclicGraph::str() const {
  std::string Out;
  for (const Edge &E : Edges) {
    auto NodeName = [](int Node) {
      int Var = (Node > 0 ? Node : -Node) - 1;
      return std::string(Node > 0 ? "t" : "-t") + std::to_string(Var);
    };
    Out += NodeName(E.From) + " -> " + NodeName(E.To) + "\n";
  }
  return Out;
}
