//===- deptest/TestPipeline.h - Pluggable dependence-test pipeline -*- C++ -*-===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's cascade (section 3) restated as a *pipeline of pluggable
/// stages*: each test — array constants, extended GCD, SVPC, Acyclic,
/// Loop Residue, Fourier-Motzkin, and the inexact Banerjee baseline of
/// section 7 — implements one uniform DependenceTest interface and is
/// registered in a global stage registry. A pipeline is an ordered
/// selection of stages, built from a spec string such as
///
///   "const,gcd,svpc,acyclic,residue,fm"   (the default exact cascade)
///   "banerjee"                            (the section 7 baseline)
///   "const,gcd,fm"                        (skip the special cases)
///
/// Stages share preprocessing through a PipelineContext that computes
/// the extended-GCD solution, the free-space bounds system and the SVPC
/// constraint classification lazily and at most once per query, so a
/// stage costs the same whether it runs first or fifth. Every exact
/// stage answers Independent/Dependent only when the answer is certain
/// and reports NotApplicable otherwise, which is what makes the final
/// Independent/Dependent verdict invariant under stage reordering
/// (checked by the pipeline permutation property test).
///
/// A structured trace layer records, per stage: the applicability
/// verdict, the answer, exactness, the witness and elapsed nanoseconds
/// — surfaced as AnalyzerOptions::Trace and `edda-cli --explain`.
///
//===----------------------------------------------------------------------===//

#ifndef EDDA_DEPTEST_TESTPIPELINE_H
#define EDDA_DEPTEST_TESTPIPELINE_H

#include "deptest/Acyclic.h"
#include "deptest/Cascade.h"
#include "deptest/ExtendedGcd.h"
#include "deptest/Problem.h"
#include "deptest/Stats.h"
#include "deptest/Svpc.h"

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace edda {

/// Outcome of one stage's attempt at a problem.
struct StageResult {
  enum class Status {
    Independent,   ///< Exact: no dependence.
    Dependent,     ///< Exact: dependence, witness attached when
                   ///< reconstruction did not overflow.
    Unknown,       ///< The stage consumed the problem but could not
                   ///< decide exactly (FM budget exhaustion, Banerjee
                   ///< "assumed dependent"). Ends the pipeline,
                   ///< flagged inexact.
    NotApplicable, ///< The stage cannot decide this problem; later
                   ///< stages continue.
    Overflow,      ///< Arithmetic gave up mid-run at every enabled
                   ///< width; later stages continue, provenance is
                   ///< recorded.
  };

  Status St = Status::NotApplicable;
  /// Witness iteration vector in x space when Dependent.
  std::optional<std::vector<int64_t>> Witness;
  /// True when this outcome came from the 128-bit retry tier (the
  /// stage's 64-bit attempt overflowed).
  bool Widened = false;
  /// Fourier-Motzkin eliminations this stage performed (zero for every
  /// other stage); accumulated into DepStats::FmWork by the runner.
  uint64_t FmWork = 0;

  static StageResult independent() {
    return {Status::Independent, std::nullopt};
  }
  static StageResult dependent(
      std::optional<std::vector<int64_t>> Witness = std::nullopt) {
    return {Status::Dependent, std::move(Witness)};
  }
  static StageResult unknown() { return {Status::Unknown, std::nullopt}; }
  static StageResult notApplicable() {
    return {Status::NotApplicable, std::nullopt};
  }
  static StageResult overflow() {
    return {Status::Overflow, std::nullopt};
  }
};

/// Shared per-query state. The preprocessing artifacts every stage
/// builds on (extended-GCD solution, free-space bounds system, SVPC
/// classification) are computed lazily and cached, so each is paid for
/// at most once regardless of stage order; the acyclic stage publishes
/// its simplified core here for the residue stage, mirroring the
/// paper's "applicability checks are byproducts of the previous stage".
///
/// Every artifact exists at two widths: the int64_t fast path and the
/// Int128 retry tier (the widening ladder). The wide twins are built
/// only when a 64-bit computation overflows and widening is enabled,
/// and reuse narrow results wherever those did not overflow — a wide
/// system is the widened narrow system, not a recomputation.
class PipelineContext {
public:
  PipelineContext(const DependenceProblem &Problem,
                  const std::vector<XAffine> &ExtraLe0,
                  const CascadeOptions &Opts)
      : Problem(Problem), ExtraLe0(ExtraLe0), Opts(Opts) {}

  const DependenceProblem &problem() const { return Problem; }
  const std::vector<XAffine> &extraLe0() const { return ExtraLe0; }
  const CascadeOptions &options() const { return Opts; }

  /// Readiness of the shared free-space system.
  enum class Prep {
    Ready,      ///< System over the free variables is available.
    Infeasible, ///< The equations alone have no integer solution.
    Overflow,   ///< Preprocessing overflowed (attributed to "gcd").
  };

  /// Extended-GCD solution of the subscript equations at width T
  /// (lazy). The wide instantiation widens the narrow solution when
  /// that one did not overflow, and re-solves at 128 bits otherwise.
  template <typename T> const DiophantineSolutionT<T> &solutionT();

  /// Builds (lazily) the bounds + ExtraLe0 system over the free
  /// variables at width T and reports its readiness.
  template <typename T> Prep prepT();

  /// The free-space system at width T. \pre prepT<T>() == Prep::Ready.
  template <typename T> const LinearSystemT<T> &systemT();

  /// The SVPC classification of systemT<T>() (lazy).
  /// \pre prepT<T>() == Prep::Ready.
  template <typename T> const SvpcResultT<T> &svpcPassT();

  /// The acyclic stage's width-T outcome, when that tier ran earlier in
  /// the pipeline.
  template <typename T> const AcyclicResultT<T> *acyclicOutcomeT() const {
    const std::optional<AcyclicResultT<T>> &A = arts<T>().Acyclic;
    return A ? &*A : nullptr;
  }
  template <typename T> void setAcyclicOutcomeT(AcyclicResultT<T> R) {
    arts<T>().Acyclic = std::move(R);
  }

  /// The historical 64-bit names, still the fast path everywhere.
  const DiophantineSolution &solution() { return solutionT<int64_t>(); }
  Prep prep() { return prepT<int64_t>(); }
  const LinearSystem &system() { return systemT<int64_t>(); }
  const SvpcResult &svpcPass() { return svpcPassT<int64_t>(); }
  const AcyclicResult *acyclicOutcome() const {
    return acyclicOutcomeT<int64_t>();
  }
  void setAcyclicOutcome(AcyclicResult R) {
    setAcyclicOutcomeT<int64_t>(std::move(R));
  }

  /// Registry id of the stage whose 64-bit *preprocessing* overflowed,
  /// when prep() == Prep::Overflow (always the extended-GCD stage:
  /// attribution must not depend on which stage triggered the lazy
  /// computation, or permutations would disagree). The same rule
  /// attributes widening provenance when the wide tier rescued a query
  /// whose narrow preprocessing overflowed.
  std::optional<unsigned> prepOverflowStage() const;

  /// True when any 64-bit preprocessing artifact overflowed (whether or
  /// not a wide twin later succeeded).
  bool narrowPrepOverflowed() const {
    return (Narrow.Solution && Narrow.Solution->Overflow) ||
           Narrow.SystemOverflow;
  }

  /// Maps a width-T free-space sample back to a 64-bit x-space witness
  /// (nullopt when reconstruction overflows or the wide witness does
  /// not fit; the qualitative answer stays exact).
  template <typename T>
  std::optional<std::vector<int64_t>>
  witnessFromT(const std::vector<T> &TSample);

  std::optional<std::vector<int64_t>>
  witnessFrom(const std::vector<int64_t> &TSample) {
    return witnessFromT<int64_t>(TSample);
  }

private:
  /// The lazy artifact set of one widening tier.
  template <typename T> struct Artifacts {
    std::optional<DiophantineSolutionT<T>> Solution;
    bool SystemBuilt = false;
    bool SystemOverflow = false;
    std::optional<LinearSystemT<T>> System;
    std::optional<SvpcResultT<T>> Svpc;
    std::optional<AcyclicResultT<T>> Acyclic;
  };

  template <typename T> Artifacts<T> &arts() {
    if constexpr (std::is_same_v<T, Int128>)
      return Wide;
    else
      return Narrow;
  }
  template <typename T> const Artifacts<T> &arts() const {
    if constexpr (std::is_same_v<T, Int128>)
      return Wide;
    else
      return Narrow;
  }

  const DependenceProblem &Problem;
  const std::vector<XAffine> &ExtraLe0;
  const CascadeOptions &Opts;

  Artifacts<int64_t> Narrow;
  Artifacts<Int128> Wide;
};

/// One pluggable dependence test. Implementations are stateless
/// singletons owned by the registry; all per-query state lives in the
/// PipelineContext.
class DependenceTest {
public:
  virtual ~DependenceTest() = default;

  /// Spec-string token ("svpc", "fm", ...).
  virtual const char *name() const = 0;
  /// Column label for the paper-table benches ("SVPC", "F-M", ...).
  virtual const char *label() const = 0;
  /// One-line description for `edda-cli --list-tests`.
  virtual const char *description() const = 0;
  /// Stats bucket this stage decides into.
  virtual TestKind kind() const = 0;
  /// False for the inexact baselines (their Unknown answers assume
  /// dependence instead of proving it).
  virtual bool exact() const = 0;

  /// Cheap applicability screen. May consult the context's lazy shared
  /// state (each artifact is computed at most once per query).
  virtual bool applicable(PipelineContext &Ctx) const = 0;

  /// Runs the test. Called only when applicable() returned true.
  virtual StageResult run(PipelineContext &Ctx) const = 0;

  /// Registry id (index in stageRegistry()); assigned at registration.
  unsigned id() const { return Id; }

private:
  friend class StageRegistryBuilder;
  unsigned Id = 0;
};

/// All registered stages, in registration (= default cascade) order.
/// Stage ids index this vector.
const std::vector<const DependenceTest *> &stageRegistry();

/// Looks a stage up by spec token; nullptr when unknown.
const DependenceTest *findStage(std::string_view Name);

/// The registered stage that decides into \p Kind; nullptr for
/// TestKind::Unanalyzable. Single source of truth for table headers.
const DependenceTest *stageForKind(TestKind Kind);

/// Printable spec token for a registry stage id ("unknown" when out of
/// range); used for overflow-provenance reporting.
const char *stageName(unsigned StageId);

/// Trace record for one stage of one query.
struct StageTrace {
  const DependenceTest *Stage = nullptr;
  bool Applicable = false;
  StageResult::Status St = StageResult::Status::NotApplicable;
  /// True when the stage decided and the answer is exact.
  bool Exact = false;
  /// True when the outcome came from the 128-bit retry tier.
  bool Widened = false;
  std::optional<std::vector<int64_t>> Witness;
  /// Wall-clock spent in applicable() + run(), nanoseconds.
  uint64_t Nanos = 0;
};

/// Trace of one full pipeline run.
struct PipelineTrace {
  std::vector<StageTrace> Stages;
  /// Human-readable multi-line rendering (indented by \p Indent).
  std::string str(unsigned Indent = 0) const;
};

/// An ordered selection of registered stages.
class TestPipeline {
public:
  /// The paper's cascade: const,gcd,svpc,acyclic,residue,fm.
  static const TestPipeline &defaultPipeline();

  /// Parses a comma-separated spec ("gcd,svpc,fm", "banerjee", or
  /// "default"). On failure returns nullopt and, when \p Error is
  /// non-null, an actionable message naming the valid stages.
  static std::optional<TestPipeline> parse(std::string_view Spec,
                                           std::string *Error = nullptr);

  const std::vector<const DependenceTest *> &stages() const {
    return Stages;
  }

  /// Canonical spec string (round-trips through parse()).
  std::string spec() const;

  /// Runs the pipeline on one problem. Decision counters land in
  /// \p Stats and per-stage records in \p Trace when provided. Stage
  /// timing is measured only when tracing.
  CascadeResult run(const DependenceProblem &Problem,
                    const std::vector<XAffine> &ExtraLe0,
                    const CascadeOptions &Opts = {},
                    DepStats *Stats = nullptr,
                    PipelineTrace *Trace = nullptr) const;

private:
  std::vector<const DependenceTest *> Stages;
};

/// Shared-ownership convenience for options structs.
std::shared_ptr<const TestPipeline> makePipeline(std::string_view Spec,
                                                 std::string *Error
                                                 = nullptr);

} // namespace edda

#endif // EDDA_DEPTEST_TESTPIPELINE_H
