//===- deptest/LinearSystem.cpp - Inequality systems over t --------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "deptest/LinearSystem.h"

#include "support/WideInt.h"

using namespace edda;

namespace edda {

template <typename T> unsigned LinearConstraintT<T>::numActiveVars() const {
  unsigned Count = 0;
  for (const T &C : Coeffs)
    if (C != T(0))
      ++Count;
  return Count;
}

template <typename T> unsigned LinearConstraintT<T>::soleVar() const {
  for (unsigned K = 0; K < Coeffs.size(); ++K)
    if (Coeffs[K] != T(0))
      return K;
  assert(false && "soleVar on a constant constraint");
  return 0;
}

template <typename T>
std::optional<T> LinearConstraintT<T>::lhsAt(const std::vector<T> &Point) const {
  assert(Point.size() == Coeffs.size() && "point arity mismatch");
  Checked<T> Sum;
  for (unsigned K = 0; K < Coeffs.size(); ++K)
    if (Coeffs[K] != T(0))
      Sum += Checked<T>(Coeffs[K]) * Point[K];
  return Sum.getOpt();
}

template <typename T>
bool LinearConstraintT<T>::satisfiedBy(const std::vector<T> &Point) const {
  std::optional<T> Lhs = lhsAt(Point);
  return Lhs && *Lhs <= Bound;
}

template <typename T> bool LinearConstraintT<T>::normalize() {
  T G(0);
  for (const T &C : Coeffs)
    G = gcdOf(G, C);
  if (G == T(0))
    return Bound >= T(0);
  if (G > T(1)) {
    for (T &C : Coeffs)
      C /= G;
    // Dividing by G >= 2, so the (min, -1) overflow pair is unreachable.
    Bound = floorDiv(Bound, G);
  }
  return true;
}

template <typename T>
bool LinearSystemT<T>::satisfiedBy(const std::vector<T> &Point) const {
  for (const LinearConstraintT<T> &C : Constraints)
    if (!C.satisfiedBy(Point))
      return false;
  return true;
}

template <typename T> bool LinearSystemT<T>::substitute(unsigned Var, T Value) {
  assert(Var < NumVars && "variable out of range");
  for (LinearConstraintT<T> &C : Constraints) {
    if (C.Coeffs[Var] == T(0))
      continue;
    // coeff*Value moves to the bound side.
    Checked<T> NewBound =
        Checked<T>(C.Bound) - Checked<T>(C.Coeffs[Var]) * Value;
    if (!NewBound.valid())
      return false;
    C.Bound = NewBound.get();
    C.Coeffs[Var] = T(0);
  }
  return true;
}

template <typename T> std::string LinearSystemT<T>::str() const {
  std::string Out = "system over " + std::to_string(NumVars) + " vars\n";
  for (const LinearConstraintT<T> &C : Constraints) {
    Out += "  ";
    bool First = true;
    for (unsigned K = 0; K < C.Coeffs.size(); ++K) {
      if (C.Coeffs[K] == T(0))
        continue;
      bool Neg = C.Coeffs[K] < T(0);
      if (!First)
        Out += Neg ? " - " : " + ";
      else if (Neg)
        Out += "-";
      First = false;
      // Render the magnitude by stripping the sign from the decimal form
      // rather than negating, which would overflow for minimum values.
      std::string Mag = toDecimalString(C.Coeffs[K]);
      if (Neg)
        Mag.erase(0, 1);
      if (Mag != "1")
        Out += Mag + "*";
      Out += "t" + std::to_string(K);
    }
    if (First)
      Out += "0";
    Out += " <= " + toDecimalString(C.Bound) + "\n";
  }
  return Out;
}

template struct LinearConstraintT<int64_t>;
template struct LinearConstraintT<Int128>;
template class LinearSystemT<int64_t>;
template class LinearSystemT<Int128>;

WideSystem widenSystem(const LinearSystem &S) {
  WideSystem W(S.numVars());
  for (const LinearConstraint &C : S.constraints())
    W.addLe(widenVec(C.Coeffs), Int128(C.Bound));
  return W;
}

} // namespace edda
