//===- deptest/LinearSystem.cpp - Inequality systems over t --------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "deptest/LinearSystem.h"

#include "support/IntMath.h"

using namespace edda;

unsigned LinearConstraint::numActiveVars() const {
  unsigned Count = 0;
  for (int64_t C : Coeffs)
    if (C != 0)
      ++Count;
  return Count;
}

unsigned LinearConstraint::soleVar() const {
  for (unsigned K = 0; K < Coeffs.size(); ++K)
    if (Coeffs[K] != 0)
      return K;
  assert(false && "soleVar on a constant constraint");
  return 0;
}

std::optional<int64_t>
LinearConstraint::lhsAt(const std::vector<int64_t> &Point) const {
  assert(Point.size() == Coeffs.size() && "point arity mismatch");
  CheckedInt Sum;
  for (unsigned K = 0; K < Coeffs.size(); ++K)
    if (Coeffs[K] != 0)
      Sum += CheckedInt(Coeffs[K]) * Point[K];
  return Sum.getOpt();
}

bool LinearConstraint::satisfiedBy(const std::vector<int64_t> &Point) const {
  std::optional<int64_t> Lhs = lhsAt(Point);
  return Lhs && *Lhs <= Bound;
}

bool LinearConstraint::normalize() {
  int64_t G = 0;
  for (int64_t C : Coeffs)
    G = gcd64(G, C);
  if (G == 0)
    return Bound >= 0;
  if (G > 1) {
    for (int64_t &C : Coeffs)
      C /= G;
    Bound = floorDiv(Bound, G);
  }
  return true;
}

bool LinearSystem::satisfiedBy(const std::vector<int64_t> &Point) const {
  for (const LinearConstraint &C : Constraints)
    if (!C.satisfiedBy(Point))
      return false;
  return true;
}

bool LinearSystem::substitute(unsigned Var, int64_t Value) {
  assert(Var < NumVars && "variable out of range");
  for (LinearConstraint &C : Constraints) {
    if (C.Coeffs[Var] == 0)
      continue;
    // coeff*Value moves to the bound side.
    CheckedInt NewBound = CheckedInt(C.Bound) -
                          CheckedInt(C.Coeffs[Var]) * Value;
    if (!NewBound.valid())
      return false;
    C.Bound = NewBound.get();
    C.Coeffs[Var] = 0;
  }
  return true;
}

std::string LinearSystem::str() const {
  std::string Out =
      "system over " + std::to_string(NumVars) + " vars\n";
  for (const LinearConstraint &C : Constraints) {
    Out += "  ";
    bool First = true;
    for (unsigned K = 0; K < C.Coeffs.size(); ++K) {
      if (C.Coeffs[K] == 0)
        continue;
      if (!First)
        Out += C.Coeffs[K] < 0 ? " - " : " + ";
      else if (C.Coeffs[K] < 0)
        Out += "-";
      First = false;
      int64_t Mag = C.Coeffs[K] < 0 ? -C.Coeffs[K] : C.Coeffs[K];
      if (Mag != 1)
        Out += std::to_string(Mag) + "*";
      Out += "t" + std::to_string(K);
    }
    if (First)
      Out += "0";
    Out += " <= " + std::to_string(C.Bound) + "\n";
  }
  return Out;
}
