//===- deptest/Stats.h - Dependence test statistics ------------*- C++ -*-===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Counters underlying the paper's Tables 1-5 and 7: how often each test
/// in the cascade decides a problem, how often each returns independent,
/// and how much the memoization tables absorb.
///
//===----------------------------------------------------------------------===//

#ifndef EDDA_DEPTEST_STATS_H
#define EDDA_DEPTEST_STATS_H

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace edda {

/// Which mechanism decided a dependence question. Order matches the
/// cascade (and the columns of the paper's Table 1).
enum class TestKind {
  ArrayConstant,  ///< All-constant subscripts: no dependence testing.
  GcdTest,        ///< Extended GCD proved independence.
  Svpc,           ///< Single Variable Per Constraint test.
  Acyclic,        ///< Acyclic test.
  LoopResidue,    ///< Simple Loop Residue test.
  FourierMotzkin, ///< Backup Fourier-Motzkin test.
  Banerjee,       ///< Inexact section 7 baseline (pipeline stage).
  Unanalyzable,   ///< Overflow / non-affine input: conservative answer.
};

constexpr unsigned NumTestKinds = 8;

/// Printable name of a test kind.
const char *testKindName(TestKind Kind);

/// Aggregated counters for one analysis run.
struct DepStats {
  /// Problems decided by each test.
  std::array<uint64_t, NumTestKinds> Decided{};
  /// Of those, how many were decided independent (section 7 reports the
  /// per-test independence rates).
  std::array<uint64_t, NumTestKinds> DecidedIndependent{};

  /// Per-pipeline-stage counters, indexed by registry stage id (see
  /// stageRegistry() in TestPipeline.h) and grown on demand — the
  /// dynamic generalization of the fixed TestKind arrays above, which
  /// survive for the Table 1-5 reproductions. StageOverflow records
  /// which stage's arithmetic gave up on queries that end Unanalyzable
  /// (provenance the single Unanalyzable bucket cannot carry).
  /// StageWiden mirrors it for the 128-bit retry tier: which stage's
  /// 64-bit arithmetic overflowed on queries the wide tier then decided
  /// (preprocessing widening is the GCD stage's, like its overflows).
  std::vector<uint64_t> StageDecided;
  std::vector<uint64_t> StageIndependent;
  std::vector<uint64_t> StageOverflow;
  std::vector<uint64_t> StageWiden;

  /// Memoization accounting (paper section 5 / Table 2).
  uint64_t Queries = 0;          ///< Dependence questions asked.
  uint64_t MemoHitsFull = 0;     ///< Served from the with-bounds table.
  uint64_t MemoHitsNoBounds = 0; ///< GCD outcome served from the
                                 ///< without-bounds table.
  uint64_t WidenedQueries = 0;   ///< Decided only after the 128-bit
                                 ///< retry (64-bit overflowed).

  /// Fourier-Motzkin eliminations performed (one per solver attempt:
  /// the initial projection plus every branch-and-bound node, across
  /// both arithmetic tiers). This is the work metric the direction
  /// hierarchy budgets against — see
  /// DirectionOptions::MaxRefineFmWork.
  uint64_t FmWork = 0;

  void recordDecision(TestKind Kind, bool Independent) {
    ++Decided[static_cast<unsigned>(Kind)];
    if (Independent)
      ++DecidedIndependent[static_cast<unsigned>(Kind)];
  }

  void recordStageDecision(unsigned StageId, bool Independent) {
    growStage(StageId);
    ++StageDecided[StageId];
    if (Independent)
      ++StageIndependent[StageId];
  }

  void recordStageOverflow(unsigned StageId) {
    growStage(StageId);
    ++StageOverflow[StageId];
  }

  void recordStageWiden(unsigned StageId) {
    growStage(StageId);
    ++StageWiden[StageId];
  }

  uint64_t decided(TestKind Kind) const {
    return Decided[static_cast<unsigned>(Kind)];
  }
  uint64_t decidedIndependent(TestKind Kind) const {
    return DecidedIndependent[static_cast<unsigned>(Kind)];
  }

  /// Total problems decided by any real test (excludes memo hits).
  uint64_t totalDecided() const;

  DepStats &operator+=(const DepStats &RHS);

  /// Multi-line human-readable dump.
  std::string str() const;

private:
  void growStage(unsigned StageId) {
    if (StageDecided.size() <= StageId) {
      StageDecided.resize(StageId + 1);
      StageIndependent.resize(StageId + 1);
      StageOverflow.resize(StageId + 1);
      StageWiden.resize(StageId + 1);
    }
  }
};

} // namespace edda

#endif // EDDA_DEPTEST_STATS_H
