//===- deptest/Svpc.h - Single Variable Per Constraint test ----*- C++ -*-===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Single Variable Per Constraint test (paper section 3.2). Each
/// single-variable constraint a*t <= b is an upper bound (a > 0) or a
/// lower bound (a < 0) on t; intersecting them per variable decides the
/// system exactly when no constraint involves two or more variables —
/// and even when some do, the computed intervals seed the Acyclic test
/// and the residue graph. This test resolves the overwhelming majority
/// of real dependence problems (paper Table 1).
///
/// Templated on the scalar type for the widening ladder: int64_t is the
/// fast path, Int128 the retry tier.
///
//===----------------------------------------------------------------------===//

#ifndef EDDA_DEPTEST_SVPC_H
#define EDDA_DEPTEST_SVPC_H

#include "deptest/LinearSystem.h"

#include <cstdint>
#include <optional>
#include <vector>

namespace edda {

/// Per-variable integer intervals accumulated from single-variable
/// constraints. A missing endpoint means unbounded in that direction.
template <typename T> struct VarIntervalsT {
  std::vector<std::optional<T>> Lo;
  std::vector<std::optional<T>> Hi;

  explicit VarIntervalsT(unsigned NumVars) : Lo(NumVars), Hi(NumVars) {}

  /// Tightens Lo[V] to at least \p Value.
  void tightenLo(unsigned V, T Value) {
    if (!Lo[V] || *Lo[V] < Value)
      Lo[V] = Value;
  }
  /// Tightens Hi[V] to at most \p Value.
  void tightenHi(unsigned V, T Value) {
    if (!Hi[V] || *Hi[V] > Value)
      Hi[V] = Value;
  }

  /// True when some variable's interval is empty.
  bool contradictory() const;
};

/// Outcome of the SVPC pass.
template <typename T> struct SvpcResultT {
  enum class Status {
    Independent, ///< Some interval (or constant constraint) is empty.
    Dependent,   ///< No multi-variable constraints remained: exact.
    NeedsMore,   ///< Multi-variable constraints remain; cascade onward.
    Overflow,    ///< T-width division overflowed; widen or give up.
  };

  Status St = Status::NeedsMore;
  /// Intervals from the single-variable constraints (valid except when
  /// Independent was decided by a constant falsehood).
  VarIntervalsT<T> Intervals{0};
  /// The surviving multi-variable constraints.
  std::vector<LinearConstraintT<T>> MultiVar;
  /// A witness point when Dependent (every variable set inside its
  /// interval). Absent if overflow prevented building one.
  std::optional<std::vector<T>> Sample;
};

/// The 64-bit fast-path instantiations (the historical names).
using VarIntervals = VarIntervalsT<int64_t>;
using SvpcResult = SvpcResultT<int64_t>;

/// Runs the SVPC test over \p System.
template <typename T> SvpcResultT<T> runSvpc(const LinearSystemT<T> &System);

} // namespace edda

#endif // EDDA_DEPTEST_SVPC_H
