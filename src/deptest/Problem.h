//===- deptest/Problem.h - Dependence problem representation ---*- C++ -*-===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The IR-independent statement of one dependence question (paper section
/// 2): do integer iteration vectors i (for reference A) and i' (for
/// reference B) exist such that every subscript pair is equal and every
/// loop bound is respected? The unknown vector x concatenates A's loop
/// variables, B's loop variables, and the shared symbolic constants:
///
///   x = [ iA_0 .. iA_{nA-1} | iB_0 .. iB_{nB-1} | s_0 .. s_{k-1} ]
///
/// The first NumCommon loops of A and of B are the same source loops
/// (their direction relationship is what direction vectors describe).
/// Symbolic constants are shared between the two references — they are
/// loop invariant, which is exactly the paper's section 8 extension.
///
//===----------------------------------------------------------------------===//

#ifndef EDDA_DEPTEST_PROBLEM_H
#define EDDA_DEPTEST_PROBLEM_H

#include <cassert>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace edda {

/// An affine form over the problem's x vector: Const + sum Coeffs[j]*x_j.
/// Coeffs always has exactly numX() entries (dense).
struct XAffine {
  std::vector<int64_t> Coeffs;
  int64_t Const = 0;

  XAffine() = default;
  explicit XAffine(unsigned NumX) : Coeffs(NumX, 0) {}

  bool isConstant() const {
    for (int64_t C : Coeffs)
      if (C != 0)
        return false;
    return true;
  }

  bool operator==(const XAffine &RHS) const = default;
};

/// One dependence question between a pair of array references.
struct DependenceProblem {
  unsigned NumLoopsA = 0;   ///< Enclosing loops of reference A.
  unsigned NumLoopsB = 0;   ///< Enclosing loops of reference B.
  unsigned NumCommon = 0;   ///< Shared outer loops (<= min(nA, nB)).
  unsigned NumSymbolic = 0; ///< Shared symbolic constants.

  /// Subscript equations, one per array dimension: form == 0.
  std::vector<XAffine> Equations;

  /// Loop bound constraints, indexed by loop-variable position in x
  /// (0..NumLoopsA+NumLoopsB). Lo[l] <= x_l and x_l <= Hi[l]. A missing
  /// entry means the bound is unknown (unanalyzable); the tests simply
  /// get a weaker system, which is still sound.
  std::vector<std::optional<XAffine>> Lo;
  std::vector<std::optional<XAffine>> Hi;

  unsigned numLoopVars() const { return NumLoopsA + NumLoopsB; }
  unsigned numX() const { return NumLoopsA + NumLoopsB + NumSymbolic; }

  /// Position in x of common loop \p L for reference A / reference B.
  unsigned xOfCommonA(unsigned L) const {
    assert(L < NumCommon && "not a common loop");
    return L;
  }
  unsigned xOfCommonB(unsigned L) const {
    assert(L < NumCommon && "not a common loop");
    return NumLoopsA + L;
  }

  /// Structural validation (sizes consistent); used by asserts and tests.
  bool wellFormed() const;

  /// Serializes the problem to a flat integer vector. The encoding is
  /// injective, so it doubles as the memoization key (section 5).
  /// \p IncludeBounds distinguishes the with-bounds and without-bounds
  /// tables (the GCD test ignores bounds).
  std::vector<int64_t> serialize(bool IncludeBounds) const;

  /// The paper's "improved" memoization scheme: returns a copy with every
  /// loop variable that appears in no equation and in no other variable's
  /// bound removed (its own bounds are dropped with it), together with
  /// the mapping from old common-loop index to new (or nullopt when
  /// removed). Removed common loops carry direction '*'.
  DependenceProblem
  withUnusedLoopsRemoved(std::vector<std::optional<unsigned>> &CommonMap)
      const;

  /// Identifies the common loops whose variables are unused (appear in no
  /// equation and no other loop's bounds), without rebuilding.
  std::vector<bool> unusedCommonLoops() const;

  /// Swaps the roles of references A and B (used by the symmetric
  /// memoization extension): x blocks exchanged, equations negated.
  DependenceProblem swapped() const;

  /// Debug rendering.
  std::string str() const;
};

} // namespace edda

#endif // EDDA_DEPTEST_PROBLEM_H
