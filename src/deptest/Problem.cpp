//===- deptest/Problem.cpp - Dependence problem representation -----------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "deptest/Problem.h"

#include <algorithm>

using namespace edda;

bool DependenceProblem::wellFormed() const {
  if (NumCommon > std::min(NumLoopsA, NumLoopsB))
    return false;
  if (Lo.size() != numLoopVars() || Hi.size() != numLoopVars())
    return false;
  for (const XAffine &E : Equations)
    if (E.Coeffs.size() != numX())
      return false;
  for (const std::optional<XAffine> &B : Lo)
    if (B && B->Coeffs.size() != numX())
      return false;
  for (const std::optional<XAffine> &B : Hi)
    if (B && B->Coeffs.size() != numX())
      return false;
  return true;
}

std::vector<int64_t> DependenceProblem::serialize(bool IncludeBounds) const {
  assert(wellFormed() && "serializing a malformed problem");
  std::vector<int64_t> Out;
  Out.push_back(NumLoopsA);
  Out.push_back(NumLoopsB);
  Out.push_back(NumCommon);
  Out.push_back(NumSymbolic);
  Out.push_back(static_cast<int64_t>(Equations.size()));
  for (const XAffine &E : Equations) {
    Out.push_back(E.Const);
    Out.insert(Out.end(), E.Coeffs.begin(), E.Coeffs.end());
  }
  if (!IncludeBounds)
    return Out;
  auto AppendBound = [&Out](const std::optional<XAffine> &B) {
    if (!B) {
      Out.push_back(0); // absent marker
      return;
    }
    Out.push_back(1);
    Out.push_back(B->Const);
    Out.insert(Out.end(), B->Coeffs.begin(), B->Coeffs.end());
  };
  for (const std::optional<XAffine> &B : Lo)
    AppendBound(B);
  for (const std::optional<XAffine> &B : Hi)
    AppendBound(B);
  return Out;
}

namespace {

/// True when dropping loop variable \p L's bound pair cannot change the
/// feasibility of the rest of the system: a one-sided range always
/// admits a value, and a two-sided range Lo <= v <= Hi is inhabited for
/// every assignment of the other variables when the two forms differ
/// only in their constants with Lo.Const <= Hi.Const (and neither
/// references v itself). Anything else — an empty constant range, a
/// triangular or symbolic pair — constrains the remaining variables
/// through the Fourier-Motzkin projection Lo(x) <= Hi(x), so the
/// variable must stay alive even when no subscript mentions it.
bool boundPairVacuous(unsigned L, const std::optional<XAffine> &Lo,
                      const std::optional<XAffine> &Hi) {
  if (!Lo || !Hi)
    return true;
  if (Lo->Coeffs[L] != 0 || Hi->Coeffs[L] != 0)
    return false;
  if (Lo->Coeffs != Hi->Coeffs)
    return false;
  return Lo->Const <= Hi->Const;
}

} // namespace

std::vector<bool> DependenceProblem::unusedCommonLoops() const {
  // A loop variable is "used" when it occurs in a subscript equation or
  // in the bound of a variable that is itself used. Compute the used set
  // to a fixpoint, then report the common loops where both copies are
  // unused.
  unsigned NumL = numLoopVars();
  std::vector<bool> Used(NumL, false);
  for (const XAffine &E : Equations)
    for (unsigned J = 0; J < NumL; ++J)
      if (E.Coeffs[J] != 0)
        Used[J] = true;
  // A non-vacuous bound pair constrains the rest of the iteration space
  // even when no subscript mentions the variable (an empty constant
  // range refutes everything; a triangular pair implies bounds on the
  // outer variables), so the variable cannot be eliminated.
  for (unsigned L = 0; L < NumL; ++L)
    if (!boundPairVacuous(L, Lo[L], Hi[L]))
      Used[L] = true;

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned L = 0; L < NumL; ++L) {
      if (!Used[L])
        continue;
      // The bounds of a used variable make the variables they mention
      // used as well.
      for (const std::optional<XAffine> *Side : {&Lo[L], &Hi[L]}) {
        if (!*Side)
          continue;
        for (unsigned J = 0; J < NumL; ++J) {
          if ((**Side).Coeffs[J] != 0 && !Used[J]) {
            Used[J] = true;
            Changed = true;
          }
        }
      }
    }
  }

  std::vector<bool> Unused(NumCommon, false);
  for (unsigned C = 0; C < NumCommon; ++C)
    Unused[C] = !Used[xOfCommonA(C)] && !Used[xOfCommonB(C)];
  return Unused;
}

DependenceProblem DependenceProblem::withUnusedLoopsRemoved(
    std::vector<std::optional<unsigned>> &CommonMap) const {
  assert(wellFormed() && "malformed problem");
  unsigned NumL = numLoopVars();

  // Used-variable fixpoint, as in unusedCommonLoops but for every loop
  // variable (not just common ones). Symbolics are kept when they occur
  // in an equation or a surviving bound. A common loop's two copies are
  // kept or removed together — dropping only one would break the
  // direction-vector pairing (e.g. a[i + j] vs a[j]: i' is absent from
  // the equation but the i loop is still tested).
  std::vector<bool> Used(NumL, false);
  for (const XAffine &E : Equations)
    for (unsigned J = 0; J < NumL; ++J)
      if (E.Coeffs[J] != 0)
        Used[J] = true;
  // Same vacuity rule as unusedCommonLoops: only bound pairs whose
  // Fourier-Motzkin projection is trivially satisfied may be dropped.
  for (unsigned L = 0; L < NumL; ++L)
    if (!boundPairVacuous(L, Lo[L], Hi[L]))
      Used[L] = true;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned C = 0; C < NumCommon; ++C) {
      bool Either = Used[xOfCommonA(C)] || Used[xOfCommonB(C)];
      if (Either && (!Used[xOfCommonA(C)] || !Used[xOfCommonB(C)])) {
        Used[xOfCommonA(C)] = Used[xOfCommonB(C)] = true;
        Changed = true;
      }
    }
    for (unsigned L = 0; L < NumL; ++L) {
      if (!Used[L])
        continue;
      for (const std::optional<XAffine> *Side : {&Lo[L], &Hi[L]}) {
        if (!*Side)
          continue;
        for (unsigned J = 0; J < NumL; ++J) {
          if ((**Side).Coeffs[J] != 0 && !Used[J]) {
            Used[J] = true;
            Changed = true;
          }
        }
      }
    }
  }

  std::vector<bool> SymUsed(NumSymbolic, false);
  auto MarkSyms = [&](const XAffine &Form) {
    for (unsigned S = 0; S < NumSymbolic; ++S)
      if (Form.Coeffs[NumL + S] != 0)
        SymUsed[S] = true;
  };
  for (const XAffine &E : Equations)
    MarkSyms(E);
  for (unsigned L = 0; L < NumL; ++L) {
    if (!Used[L])
      continue;
    if (Lo[L])
      MarkSyms(*Lo[L]);
    if (Hi[L])
      MarkSyms(*Hi[L]);
  }

  // Build the old-x -> new-x mapping.
  std::vector<std::optional<unsigned>> XMap(numX());
  DependenceProblem Out;
  unsigned Next = 0;
  for (unsigned L = 0; L < NumLoopsA; ++L)
    if (Used[L])
      XMap[L] = Next++;
  Out.NumLoopsA = Next;
  for (unsigned L = 0; L < NumLoopsB; ++L)
    if (Used[NumLoopsA + L])
      XMap[NumLoopsA + L] = Next++;
  Out.NumLoopsB = Next - Out.NumLoopsA;
  for (unsigned S = 0; S < NumSymbolic; ++S)
    if (SymUsed[S])
      XMap[NumL + S] = Next++;
  Out.NumSymbolic = Next - Out.NumLoopsA - Out.NumLoopsB;

  // Common pairs are kept or removed together (synced above), and
  // removal preserves order, so the kept pairs renumber consecutively
  // and remain a prefix of both loop blocks.
  CommonMap.assign(NumCommon, std::nullopt);
  unsigned NewCommon = 0;
  for (unsigned C = 0; C < NumCommon; ++C) {
    assert(Used[xOfCommonA(C)] == Used[xOfCommonB(C)] &&
           "common pair usage out of sync");
    if (Used[xOfCommonA(C)])
      CommonMap[C] = NewCommon++;
  }
  Out.NumCommon = NewCommon;

  unsigned NewNumX = Next;
  auto Remap = [&](const XAffine &Form) {
    XAffine NewForm(NewNumX);
    NewForm.Const = Form.Const;
    for (unsigned J = 0; J < numX(); ++J)
      if (Form.Coeffs[J] != 0) {
        assert(XMap[J] && "used variable lost in remap");
        NewForm.Coeffs[*XMap[J]] = Form.Coeffs[J];
      }
    return NewForm;
  };

  for (const XAffine &E : Equations)
    Out.Equations.push_back(Remap(E));
  Out.Lo.resize(Out.numLoopVars());
  Out.Hi.resize(Out.numLoopVars());
  for (unsigned L = 0; L < NumL; ++L) {
    if (!Used[L])
      continue;
    unsigned NewL = *XMap[L];
    if (Lo[L])
      Out.Lo[NewL] = Remap(*Lo[L]);
    if (Hi[L])
      Out.Hi[NewL] = Remap(*Hi[L]);
  }
  assert(Out.wellFormed() && "remap produced a malformed problem");
  return Out;
}

namespace {

/// Remaps an affine form under an x permutation.
XAffine permuteForm(const XAffine &Form,
                    const std::vector<unsigned> &NewIndex,
                    bool Negate) {
  XAffine Out(static_cast<unsigned>(Form.Coeffs.size()));
  Out.Const = Negate ? -Form.Const : Form.Const;
  for (unsigned J = 0; J < Form.Coeffs.size(); ++J)
    Out.Coeffs[NewIndex[J]] = Negate ? -Form.Coeffs[J] : Form.Coeffs[J];
  return Out;
}

} // namespace

DependenceProblem DependenceProblem::swapped() const {
  assert(wellFormed() && "malformed problem");
  DependenceProblem Out;
  Out.NumLoopsA = NumLoopsB;
  Out.NumLoopsB = NumLoopsA;
  Out.NumCommon = NumCommon;
  Out.NumSymbolic = NumSymbolic;

  // Old index -> new index: A block moves after B block.
  std::vector<unsigned> NewIndex(numX());
  for (unsigned L = 0; L < NumLoopsA; ++L)
    NewIndex[L] = NumLoopsB + L;
  for (unsigned L = 0; L < NumLoopsB; ++L)
    NewIndex[NumLoopsA + L] = L;
  for (unsigned S = 0; S < NumSymbolic; ++S)
    NewIndex[numLoopVars() + S] = numLoopVars() + S;

  // Equations were fA - fB == 0; after the swap they read fB - fA == 0.
  for (const XAffine &E : Equations)
    Out.Equations.push_back(permuteForm(E, NewIndex, /*Negate=*/true));

  Out.Lo.resize(numLoopVars());
  Out.Hi.resize(numLoopVars());
  for (unsigned L = 0; L < numLoopVars(); ++L) {
    if (Lo[L])
      Out.Lo[NewIndex[L]] = permuteForm(*Lo[L], NewIndex, /*Negate=*/false);
    if (Hi[L])
      Out.Hi[NewIndex[L]] = permuteForm(*Hi[L], NewIndex, /*Negate=*/false);
  }
  assert(Out.wellFormed() && "swap produced a malformed problem");
  return Out;
}

namespace {

std::string formStr(const XAffine &Form) {
  std::string Out;
  bool First = true;
  for (unsigned J = 0; J < Form.Coeffs.size(); ++J) {
    if (Form.Coeffs[J] == 0)
      continue;
    if (!First)
      Out += Form.Coeffs[J] < 0 ? " - " : " + ";
    else if (Form.Coeffs[J] < 0)
      Out += "-";
    First = false;
    int64_t Mag = Form.Coeffs[J] < 0 ? -Form.Coeffs[J] : Form.Coeffs[J];
    if (Mag != 1)
      Out += std::to_string(Mag) + "*";
    Out += "x" + std::to_string(J);
  }
  if (First)
    return std::to_string(Form.Const);
  if (Form.Const != 0) {
    Out += Form.Const < 0 ? " - " : " + ";
    Out += std::to_string(Form.Const < 0 ? -Form.Const : Form.Const);
  }
  return Out;
}

} // namespace

std::string DependenceProblem::str() const {
  std::string Out = "problem loopsA=" + std::to_string(NumLoopsA) +
                    " loopsB=" + std::to_string(NumLoopsB) +
                    " common=" + std::to_string(NumCommon) +
                    " symbolic=" + std::to_string(NumSymbolic) + "\n";
  for (const XAffine &E : Equations)
    Out += "  eq: " + formStr(E) + " == 0\n";
  for (unsigned L = 0; L < numLoopVars(); ++L) {
    Out += "  x" + std::to_string(L) + " in [";
    Out += Lo[L] ? formStr(*Lo[L]) : std::string("-inf");
    Out += ", ";
    Out += Hi[L] ? formStr(*Hi[L]) : std::string("+inf");
    Out += "]\n";
  }
  return Out;
}
