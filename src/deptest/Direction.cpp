//===- deptest/Direction.cpp - Direction and distance vectors -------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "deptest/Direction.h"

#include "deptest/ExtendedGcd.h"

#include <algorithm>

using namespace edda;

char edda::dirChar(Dir D) {
  switch (D) {
  case Dir::Less:
    return '<';
  case Dir::Equal:
    return '=';
  case Dir::Greater:
    return '>';
  case Dir::Any:
    return '*';
  }
  return '?';
}

std::string edda::dirVectorStr(const DirVector &V) {
  std::string Out = "(";
  for (unsigned K = 0; K < V.size(); ++K) {
    if (K)
      Out += ", ";
    Out += dirChar(V[K]);
  }
  Out += ")";
  return Out;
}

namespace {

/// Appends the linear constraints (forms required <= 0) imposing
/// direction \p D on common loop \p K.
void appendDirConstraints(const DependenceProblem &P, unsigned K, Dir D,
                          std::vector<XAffine> &Out) {
  unsigned A = P.xOfCommonA(K);
  unsigned B = P.xOfCommonB(K);
  switch (D) {
  case Dir::Less: { // i < i'  <=>  xA - xB + 1 <= 0
    XAffine F(P.numX());
    F.Coeffs[A] = 1;
    F.Coeffs[B] = -1;
    F.Const = 1;
    Out.push_back(std::move(F));
    return;
  }
  case Dir::Equal: { // xA - xB <= 0 and xB - xA <= 0
    XAffine F1(P.numX());
    F1.Coeffs[A] = 1;
    F1.Coeffs[B] = -1;
    Out.push_back(std::move(F1));
    XAffine F2(P.numX());
    F2.Coeffs[A] = -1;
    F2.Coeffs[B] = 1;
    Out.push_back(std::move(F2));
    return;
  }
  case Dir::Greater: { // i > i'  <=>  xB - xA + 1 <= 0
    XAffine F(P.numX());
    F.Coeffs[A] = -1;
    F.Coeffs[B] = 1;
    F.Const = 1;
    Out.push_back(std::move(F));
    return;
  }
  case Dir::Any:
    return;
  }
}

/// Number of constraint forms appendDirConstraints adds for \p D.
unsigned dirConstraintCount(Dir D) { return D == Dir::Equal ? 2 : 1; }

/// Recursive hierarchical refinement state.
struct Refiner {
  const DependenceProblem &P;
  const DirectionOptions &Opts;
  DirectionResult &R;
  /// Directions already determined per common loop (distance pruning),
  /// or Any-marked loops that need no testing (unused elimination).
  std::vector<std::optional<Dir>> Fixed;
  std::vector<XAffine> Constraints;
  DirVector Prefix;
  /// Set when some recorded vector's decisive answer was Unknown.
  bool AnyUnknownLeaf = false;
  /// Set when some vector was recorded with an exact Dependent answer.
  bool AnyExactDependent = false;

  /// True once the refinement tree has spent its cumulative
  /// Fourier-Motzkin budget (Opts.MaxRefineFmWork). The root query's
  /// work counts against it too — a root that alone exhausts the
  /// budget yields a single all-'*' vector.
  bool overBudget() const {
    return Opts.MaxRefineFmWork != 0 &&
           R.TestStats.FmWork >= Opts.MaxRefineFmWork;
  }

  /// Summarizes the untested remainder of the current subtree by one
  /// conservative vector: Prefix followed by '*' for every remaining
  /// level. Coverage is preserved (Any covers all three directions);
  /// exactness is forfeited via AnyUnknownLeaf.
  void bailConservatively(unsigned Level) {
    size_t Keep = Prefix.size();
    for (unsigned L = Level; L < P.NumCommon; ++L)
      Prefix.push_back(Dir::Any);
    R.Vectors.push_back(Prefix);
    Prefix.resize(Keep);
    AnyUnknownLeaf = true;
  }

  void refine(unsigned Level, DepAnswer Incoming) {
    if (Level == P.NumCommon) {
      R.Vectors.push_back(Prefix);
      if (Incoming == DepAnswer::Unknown)
        AnyUnknownLeaf = true;
      else
        AnyExactDependent = true;
      return;
    }
    if (Fixed[Level]) {
      // Forced by a constant distance or marked '*': no test needed.
      Prefix.push_back(*Fixed[Level]);
      refine(Level + 1, Incoming);
      Prefix.pop_back();
      return;
    }
    for (Dir D : {Dir::Less, Dir::Equal, Dir::Greater}) {
      if (overBudget()) {
        bailConservatively(Level);
        return;
      }
      // Never let a single query overshoot the remaining budget: cap
      // its combine operations (per widening tier) at what is left, on
      // top of whatever caps the caller configured.
      CascadeOptions QOpts = Opts.Cascade;
      if (Opts.MaxRefineFmWork != 0) {
        uint64_t Remaining = Opts.MaxRefineFmWork - R.TestStats.FmWork;
        QOpts.Fm.MaxCombines = QOpts.Fm.MaxCombines == 0
                                   ? Remaining
                                   : std::min(QOpts.Fm.MaxCombines,
                                              Remaining);
      }
      appendDirConstraints(P, Level, D, Constraints);
      ++R.TestsRun;
      CascadeResult Test = testDependenceConstrained(
          P, Constraints, QOpts, &R.TestStats);
      R.Widened |= Test.Widened;
      if (Test.Answer != DepAnswer::Independent) {
        Prefix.push_back(D);
        refine(Level + 1, Test.Answer);
        Prefix.pop_back();
      }
      Constraints.resize(Constraints.size() - dirConstraintCount(D));
    }
  }
};

/// Checks the Burke-Cytron separability conditions on \p P: every loop is
/// common, every equation couples exactly one common pair with no
/// symbolics, and every bound is constant.
bool isSeparable(const DependenceProblem &P) {
  if (P.NumLoopsA != P.NumCommon || P.NumLoopsB != P.NumCommon)
    return false;
  for (unsigned L = 0; L < P.numLoopVars(); ++L) {
    if (P.Lo[L] && !P.Lo[L]->isConstant())
      return false;
    if (P.Hi[L] && !P.Hi[L]->isConstant())
      return false;
  }
  for (const XAffine &Eq : P.Equations) {
    int Pair = -1;
    for (unsigned S = 0; S < P.NumSymbolic; ++S)
      if (Eq.Coeffs[P.numLoopVars() + S] != 0)
        return false;
    for (unsigned K = 0; K < P.NumCommon; ++K) {
      bool Involves = Eq.Coeffs[P.xOfCommonA(K)] != 0 ||
                      Eq.Coeffs[P.xOfCommonB(K)] != 0;
      if (!Involves)
        continue;
      if (Pair >= 0)
        return false; // couples two loops
      Pair = static_cast<int>(K);
    }
  }
  return true;
}

/// Extracts the one-loop subproblem for common loop \p K of a separable
/// problem.
DependenceProblem dimensionSubproblem(const DependenceProblem &P,
                                      unsigned K) {
  DependenceProblem Sub;
  Sub.NumLoopsA = Sub.NumLoopsB = Sub.NumCommon = 1;
  Sub.NumSymbolic = 0;
  unsigned A = P.xOfCommonA(K);
  unsigned B = P.xOfCommonB(K);
  for (const XAffine &Eq : P.Equations) {
    if (Eq.Coeffs[A] == 0 && Eq.Coeffs[B] == 0)
      continue;
    XAffine NewEq(2);
    NewEq.Const = Eq.Const;
    NewEq.Coeffs[0] = Eq.Coeffs[A];
    NewEq.Coeffs[1] = Eq.Coeffs[B];
    Sub.Equations.push_back(std::move(NewEq));
  }
  Sub.Lo.resize(2);
  Sub.Hi.resize(2);
  auto CopyBound = [](const std::optional<XAffine> &In)
      -> std::optional<XAffine> {
    if (!In)
      return std::nullopt;
    XAffine Out(2);
    Out.Const = In->Const;
    return Out;
  };
  Sub.Lo[0] = CopyBound(P.Lo[A]);
  Sub.Hi[0] = CopyBound(P.Hi[A]);
  Sub.Lo[1] = CopyBound(P.Lo[B]);
  Sub.Hi[1] = CopyBound(P.Hi[B]);
  return Sub;
}

/// Per-dimension computation for separable problems: 3 tests per
/// dimension instead of 3^n, with the result the cross product.
DirectionResult computeSeparable(const DependenceProblem &P,
                                 const DirectionOptions &Opts) {
  DirectionResult R;
  R.Distances.assign(P.NumCommon, std::nullopt);

  // Equations that involve no common pair at all are dropped by
  // dimensionSubproblem, but an infeasible constant row (c == 0 with
  // c != 0) refutes the whole problem — including the NumCommon == 0
  // case, where the cross product below would otherwise fabricate an
  // empty "dependent" vector.
  for (const XAffine &Eq : P.Equations) {
    bool AnyLoopCoeff = false;
    for (unsigned J = 0; J < P.numLoopVars(); ++J)
      AnyLoopCoeff |= Eq.Coeffs[J] != 0;
    if (!AnyLoopCoeff && Eq.Const != 0) {
      R.RootAnswer = DepAnswer::Independent;
      R.RootDecidedBy = TestKind::ArrayConstant;
      return R;
    }
  }

  std::vector<std::vector<Dir>> PerDim(P.NumCommon);
  // A dimension whose surviving directions were all answered Unknown
  // has no proved dependence; the cross product must not claim a
  // Dependent root from it.
  bool AllDimsProved = true;
  for (unsigned K = 0; K < P.NumCommon; ++K) {
    DependenceProblem Sub = dimensionSubproblem(P, K);
    if (Opts.DistanceVectorPruning) {
      DiophantineSolution Sol = solveEquations(Sub);
      if (Sol.Solvable && !Sol.Overflow) {
        XAffine Delta(2);
        Delta.Coeffs[0] = -1;
        Delta.Coeffs[1] = 1;
        std::vector<int64_t> TCoeffs;
        int64_t TConst;
        if (projectToFree(Delta, Sol, TCoeffs, TConst) &&
            std::all_of(TCoeffs.begin(), TCoeffs.end(),
                        [](int64_t C) { return C == 0; }))
          R.Distances[K] =
              Opts.InjectMisSignedPruning ? -TConst : TConst;
      }
    }
    bool DimProved = false;
    for (Dir D : {Dir::Less, Dir::Equal, Dir::Greater}) {
      std::vector<XAffine> Constraints;
      appendDirConstraints(Sub, 0, D, Constraints);
      ++R.TestsRun;
      CascadeResult Test = testDependenceConstrained(
          Sub, Constraints, Opts.Cascade, &R.TestStats);
      R.Widened |= Test.Widened;
      if (Test.Answer != DepAnswer::Independent)
        PerDim[K].push_back(D);
      if (Test.Answer == DepAnswer::Dependent)
        DimProved = true;
      if (Test.Answer == DepAnswer::Unknown)
        R.Exact = false;
    }
    if (PerDim[K].empty()) {
      // All three directional tests refuted this dimension: the whole
      // nest is independent, exactly, whatever other dimensions said.
      R.RootAnswer = DepAnswer::Independent;
      R.Exact = true;
      R.Distances.assign(P.NumCommon, std::nullopt);
      return R;
    }
    AllDimsProved &= DimProved;
  }
  // Cross product of the per-dimension sets.
  std::vector<DirVector> Acc = {{}};
  for (unsigned K = 0; K < P.NumCommon; ++K) {
    std::vector<DirVector> Next;
    for (const DirVector &V : Acc) {
      for (Dir D : PerDim[K]) {
        DirVector Extended = V;
        Extended.push_back(D);
        Next.push_back(std::move(Extended));
      }
    }
    Acc = std::move(Next);
  }
  R.Vectors = std::move(Acc);
  // Separable dimensions are independent, so one proved witness per
  // dimension combines into a witness for the whole nest; a dimension
  // that only ever answered Unknown leaves the root Unknown.
  R.RootAnswer =
      AllDimsProved ? DepAnswer::Dependent : DepAnswer::Unknown;
  return R;
}

} // namespace

DirectionResult
edda::computeDirectionVectors(const DependenceProblem &Problem,
                              const DirectionOptions &Opts) {
  assert(Problem.wellFormed() && "malformed problem");

  // Unused-variable elimination: compute on the reduced problem and map
  // the vectors back with '*' components for removed loops.
  DependenceProblem Reduced;
  std::vector<std::optional<unsigned>> CommonMap(Problem.NumCommon);
  const DependenceProblem *Work = &Problem;
  if (Opts.EliminateUnusedVars) {
    Reduced = Problem.withUnusedLoopsRemoved(CommonMap);
    Work = &Reduced;
  } else {
    for (unsigned K = 0; K < Problem.NumCommon; ++K)
      CommonMap[K] = K;
  }

  DirectionResult Inner;
  if (Opts.SeparableDimensions && isSeparable(*Work)) {
    Inner = computeSeparable(*Work, Opts);
  } else {
    Inner.Distances.assign(Work->NumCommon, std::nullopt);
    // Root (*,...,*) test.
    ++Inner.TestsRun;
    CascadeResult Root =
        testDependence(*Work, Opts.Cascade, &Inner.TestStats);
    Inner.RootAnswer = Root.Answer;
    Inner.RootDecidedBy = Root.DecidedBy;
    Inner.RootWidened = Root.Widened;
    Inner.Widened = Root.Widened;
    if (Root.Answer != DepAnswer::Independent) {
      Refiner Ref{*Work, Opts, Inner,
                  std::vector<std::optional<Dir>>(Work->NumCommon),
                  {}, {}, false, false};

      // Distance-vector pruning: a constant i'_k - i_k forces the
      // direction and yields the distance.
      if (Opts.DistanceVectorPruning && Work->NumCommon > 0) {
        DiophantineSolution Sol = solveEquations(*Work);
        if (Sol.Solvable && !Sol.Overflow) {
          for (unsigned K = 0; K < Work->NumCommon; ++K) {
            XAffine Delta(Work->numX());
            Delta.Coeffs[Work->xOfCommonA(K)] = -1;
            Delta.Coeffs[Work->xOfCommonB(K)] = 1;
            std::vector<int64_t> TCoeffs;
            int64_t TConst;
            if (!projectToFree(Delta, Sol, TCoeffs, TConst))
              continue;
            if (!std::all_of(TCoeffs.begin(), TCoeffs.end(),
                             [](int64_t C) { return C == 0; }))
              continue;
            int64_t Dist =
                Opts.InjectMisSignedPruning ? -TConst : TConst;
            Inner.Distances[K] = Dist;
            Ref.Fixed[K] = Dist > 0   ? Dir::Less
                           : Dist < 0 ? Dir::Greater
                                      : Dir::Equal;
          }
        }
      }

      Ref.refine(0, Root.Answer);

      // Implicit branch & bound (paper end of section 6): an inexact
      // root refuted on every leaf is exact independence; a root proved
      // dependent on some exact leaf is exact dependence.
      if (Inner.RootAnswer == DepAnswer::Unknown) {
        if (Inner.Vectors.empty() && !Ref.AnyUnknownLeaf)
          Inner.RootAnswer = DepAnswer::Independent;
        else if (Ref.AnyExactDependent)
          Inner.RootAnswer = DepAnswer::Dependent;
      }
      Inner.Exact = Inner.RootAnswer != DepAnswer::Unknown &&
                    !Ref.AnyUnknownLeaf;
    }
  }

  // Map vectors and distances back to the original common loops.
  DirectionResult Result;
  Result.RootAnswer = Inner.RootAnswer;
  Result.RootDecidedBy = Inner.RootDecidedBy;
  Result.Exact = Inner.Exact;
  Result.Widened = Inner.Widened;
  Result.RootWidened = Inner.RootWidened;
  Result.TestStats = Inner.TestStats;
  Result.TestsRun = Inner.TestsRun;
  Result.Distances.assign(Problem.NumCommon, std::nullopt);
  for (unsigned K = 0; K < Problem.NumCommon; ++K)
    if (CommonMap[K] && *CommonMap[K] < Inner.Distances.size())
      Result.Distances[K] = Inner.Distances[*CommonMap[K]];
  for (const DirVector &V : Inner.Vectors) {
    DirVector Mapped(Problem.NumCommon, Dir::Any);
    for (unsigned K = 0; K < Problem.NumCommon; ++K)
      if (CommonMap[K])
        Mapped[K] = V[*CommonMap[K]];
    Result.Vectors.push_back(std::move(Mapped));
  }
  return Result;
}
