//===- deptest/LoopResidue.cpp - Simple Loop Residue test -----------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "deptest/LoopResidue.h"

#include "support/IntMath.h"

#include <algorithm>

using namespace edda;

std::string ResidueGraph::str() const {
  std::string Out;
  auto NodeName = [this](unsigned Node) {
    if (Node + 1 == NumNodes)
      return std::string("n0");
    return "t" + std::to_string(Node);
  };
  for (const Edge &E : Edges)
    Out += NodeName(E.From) + " -> " + NodeName(E.To) + "  (" +
           std::to_string(E.Weight) + ")\n";
  return Out;
}

ResidueResult
edda::runLoopResidue(unsigned NumVars,
                     const std::vector<LinearConstraint> &MultiVar,
                     const VarIntervals &Intervals) {
  ResidueResult Result;
  ResidueGraph &Graph = Result.Graph;
  Graph.NumNodes = NumVars + 1;
  const unsigned N0 = NumVars;

  // Applicability and edge construction: every multi-variable constraint
  // must be a*ti - a*tj <= c.
  for (const LinearConstraint &C : MultiVar) {
    if (C.numActiveVars() != 2)
      return Result; // NotApplicable
    unsigned I = 0, J = 0;
    bool HaveI = false;
    for (unsigned V = 0; V < C.Coeffs.size(); ++V) {
      if (C.Coeffs[V] == 0)
        continue;
      if (!HaveI) {
        I = V;
        HaveI = true;
      } else {
        J = V;
      }
    }
    int64_t AI = C.Coeffs[I];
    int64_t AJ = C.Coeffs[J];
    std::optional<int64_t> NegAJ = checkedNeg(AJ);
    if (!NegAJ || AI != *NegAJ)
      return Result; // coefficients are not +a / -a
    // Orient so the positive-coefficient variable is the edge source:
    // a*tFrom - a*tTo <= c  ==>  tFrom <= tTo + floor(c/a).
    unsigned From = AI > 0 ? I : J;
    unsigned To = AI > 0 ? J : I;
    int64_t A = AI > 0 ? AI : AJ;
    assert(A > 0 && "orientation failed");
    Graph.Edges.push_back({From, To, floorDiv(C.Bound, A)});
  }

  // Single-variable intervals attach to n0 (which stands for 0):
  //   t_v <= Hi  ==>  edge v -> n0 weight Hi
  //   t_v >= Lo  ==>  edge n0 -> v weight -Lo.
  for (unsigned V = 0; V < NumVars; ++V) {
    if (Intervals.Hi[V])
      Graph.Edges.push_back({V, N0, *Intervals.Hi[V]});
    if (Intervals.Lo[V]) {
      std::optional<int64_t> W = checkedNeg(*Intervals.Lo[V]);
      if (!W) {
        Result.St = ResidueResult::Status::Overflow;
        return Result;
      }
      Graph.Edges.push_back({N0, V, *W});
    }
  }

  // Bellman-Ford from a virtual source connected to every node with
  // weight 0 (equivalently: all distances start at 0). A relaxation that
  // still fires on pass NumNodes proves a negative cycle.
  const unsigned NumNodes = Graph.NumNodes;
  std::vector<int64_t> Dist(NumNodes, 0);
  std::vector<int> Pred(NumNodes, -1);
  int CycleEntry = -1;
  for (unsigned Pass = 0; Pass < NumNodes; ++Pass) {
    bool Any = false;
    for (const ResidueGraph::Edge &E : Graph.Edges) {
      std::optional<int64_t> Candidate = checkedAdd(Dist[E.From], E.Weight);
      if (!Candidate) {
        Result.St = ResidueResult::Status::Overflow;
        return Result;
      }
      if (*Candidate < Dist[E.To]) {
        Dist[E.To] = *Candidate;
        Pred[E.To] = static_cast<int>(E.From);
        Any = true;
        if (Pass + 1 == NumNodes)
          CycleEntry = static_cast<int>(E.To);
      }
    }
    if (!Any)
      break;
  }

  if (CycleEntry >= 0) {
    // Walk predecessors NumNodes times to guarantee landing inside the
    // cycle, then collect it.
    unsigned Node = static_cast<unsigned>(CycleEntry);
    for (unsigned I = 0; I < NumNodes; ++I)
      Node = static_cast<unsigned>(Pred[Node]);
    std::vector<unsigned> Cycle;
    unsigned Cursor = Node;
    do {
      Cycle.push_back(Cursor);
      Cursor = static_cast<unsigned>(Pred[Cursor]);
    } while (Cursor != Node);
    Cycle.push_back(Node);
    std::reverse(Cycle.begin(), Cycle.end());
    Result.St = ResidueResult::Status::Independent;
    Result.NegativeCycle = std::move(Cycle);
    return Result;
  }

  // Feasible: potentials give an integral witness. t_u <= t_w + W holds
  // for t_v = Dist[n0] - Dist[v], normalized so that n0 maps to 0.
  std::vector<int64_t> Sample(NumVars);
  for (unsigned V = 0; V < NumVars; ++V) {
    std::optional<int64_t> Value = checkedSub(Dist[N0], Dist[V]);
    if (!Value) {
      Result.St = ResidueResult::Status::Overflow;
      return Result;
    }
    Sample[V] = *Value;
  }
  Result.St = ResidueResult::Status::Dependent;
  Result.Sample = std::move(Sample);
  return Result;
}
