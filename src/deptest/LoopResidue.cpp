//===- deptest/LoopResidue.cpp - Simple Loop Residue test -----------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "deptest/LoopResidue.h"

#include "support/WideInt.h"

#include <algorithm>

using namespace edda;

namespace edda {

template <typename T> std::string ResidueGraphT<T>::str() const {
  std::string Out;
  auto NodeName = [this](unsigned Node) {
    if (Node + 1 == NumNodes)
      return std::string("n0");
    return "t" + std::to_string(Node);
  };
  for (const Edge &E : Edges)
    Out += NodeName(E.From) + " -> " + NodeName(E.To) + "  (" +
           toDecimalString(E.Weight) + ")\n";
  return Out;
}

template <typename T>
ResidueResultT<T>
runLoopResidue(unsigned NumVars,
               const std::vector<LinearConstraintT<T>> &MultiVar,
               const VarIntervalsT<T> &Intervals) {
  ResidueResultT<T> Result;
  ResidueGraphT<T> &Graph = Result.Graph;
  Graph.NumNodes = NumVars + 1;
  const unsigned N0 = NumVars;

  // Applicability and edge construction: every multi-variable constraint
  // must be a*ti - a*tj <= c.
  for (const LinearConstraintT<T> &C : MultiVar) {
    if (C.numActiveVars() != 2)
      return Result; // NotApplicable
    unsigned I = 0, J = 0;
    bool HaveI = false;
    for (unsigned V = 0; V < C.Coeffs.size(); ++V) {
      if (C.Coeffs[V] == T(0))
        continue;
      if (!HaveI) {
        I = V;
        HaveI = true;
      } else {
        J = V;
      }
    }
    T AI = C.Coeffs[I];
    T AJ = C.Coeffs[J];
    std::optional<T> NegAJ = checkedNeg(AJ);
    if (!NegAJ || AI != *NegAJ)
      return Result; // coefficients are not +a / -a
    // Orient so the positive-coefficient variable is the edge source:
    // a*tFrom - a*tTo <= c  ==>  tFrom <= tTo + floor(c/a). The divisor
    // is strictly positive, so plain floorDiv cannot overflow.
    unsigned From = AI > T(0) ? I : J;
    unsigned To = AI > T(0) ? J : I;
    T A = AI > T(0) ? AI : AJ;
    assert(A > T(0) && "orientation failed");
    Graph.Edges.push_back({From, To, floorDiv(C.Bound, A)});
  }

  // Single-variable intervals attach to n0 (which stands for 0):
  //   t_v <= Hi  ==>  edge v -> n0 weight Hi
  //   t_v >= Lo  ==>  edge n0 -> v weight -Lo.
  for (unsigned V = 0; V < NumVars; ++V) {
    if (Intervals.Hi[V])
      Graph.Edges.push_back({V, N0, *Intervals.Hi[V]});
    if (Intervals.Lo[V]) {
      std::optional<T> W = checkedNeg(*Intervals.Lo[V]);
      if (!W) {
        Result.St = ResidueResultT<T>::Status::Overflow;
        return Result;
      }
      Graph.Edges.push_back({N0, V, *W});
    }
  }

  // Bellman-Ford from a virtual source connected to every node with
  // weight 0 (equivalently: all distances start at 0). A relaxation that
  // still fires on pass NumNodes proves a negative cycle.
  const unsigned NumNodes = Graph.NumNodes;
  std::vector<T> Dist(NumNodes, T(0));
  std::vector<int> Pred(NumNodes, -1);
  int CycleEntry = -1;
  for (unsigned Pass = 0; Pass < NumNodes; ++Pass) {
    bool Any = false;
    for (const typename ResidueGraphT<T>::Edge &E : Graph.Edges) {
      std::optional<T> Candidate = checkedAdd(Dist[E.From], E.Weight);
      if (!Candidate) {
        Result.St = ResidueResultT<T>::Status::Overflow;
        return Result;
      }
      if (*Candidate < Dist[E.To]) {
        Dist[E.To] = *Candidate;
        Pred[E.To] = static_cast<int>(E.From);
        Any = true;
        if (Pass + 1 == NumNodes)
          CycleEntry = static_cast<int>(E.To);
      }
    }
    if (!Any)
      break;
  }

  if (CycleEntry >= 0) {
    // Walk predecessors NumNodes times to guarantee landing inside the
    // cycle, then collect it.
    unsigned Node = static_cast<unsigned>(CycleEntry);
    for (unsigned I = 0; I < NumNodes; ++I)
      Node = static_cast<unsigned>(Pred[Node]);
    std::vector<unsigned> Cycle;
    unsigned Cursor = Node;
    do {
      Cycle.push_back(Cursor);
      Cursor = static_cast<unsigned>(Pred[Cursor]);
    } while (Cursor != Node);
    Cycle.push_back(Node);
    std::reverse(Cycle.begin(), Cycle.end());
    Result.St = ResidueResultT<T>::Status::Independent;
    Result.NegativeCycle = std::move(Cycle);
    return Result;
  }

  // Feasible: potentials give an integral witness. t_u <= t_w + W holds
  // for t_v = Dist[n0] - Dist[v], normalized so that n0 maps to 0.
  std::vector<T> Sample(NumVars, T(0));
  for (unsigned V = 0; V < NumVars; ++V) {
    std::optional<T> Value = checkedSub(Dist[N0], Dist[V]);
    if (!Value) {
      Result.St = ResidueResultT<T>::Status::Overflow;
      return Result;
    }
    Sample[V] = *Value;
  }
  Result.St = ResidueResultT<T>::Status::Dependent;
  Result.Sample = std::move(Sample);
  return Result;
}

template struct ResidueGraphT<int64_t>;
template struct ResidueGraphT<Int128>;
template ResidueResultT<int64_t>
runLoopResidue(unsigned, const std::vector<LinearConstraintT<int64_t>> &,
               const VarIntervalsT<int64_t> &);
template ResidueResultT<Int128>
runLoopResidue(unsigned, const std::vector<LinearConstraintT<Int128>> &,
               const VarIntervalsT<Int128> &);

} // namespace edda
